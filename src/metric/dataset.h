// Object storage for metric spaces. A Dataset is a columnar (SoA) container
// holding either fixed-dimension float vectors or variable-length strings —
// the two object families used by the paper's five datasets (L1/L2/cosine
// vectors; edit-distance words and DNA reads).
#ifndef GTS_METRIC_DATASET_H_
#define GTS_METRIC_DATASET_H_

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace gts {

enum class DataKind {
  kFloatVector,  ///< fixed-dim float vectors (T-Loc, Vector, Color)
  kString,       ///< variable-length byte strings (Words, DNA)
};

/// Columnar object container. Objects are addressed by dense uint32 ids in
/// insertion order. Append-only; removal is handled above this layer
/// (tombstones / compaction via Slice()).
class Dataset {
 public:
  /// Creates an empty vector dataset with the given dimensionality.
  static Dataset FloatVectors(uint32_t dim);
  /// Creates an empty string dataset.
  static Dataset Strings();

  DataKind kind() const { return kind_; }
  uint32_t dim() const { return dim_; }
  uint32_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Appends one vector; `v.size()` must equal dim().
  void AppendVector(std::span<const float> v);
  /// Appends one string.
  void AppendString(std::string_view s);
  /// Appends object `idx` of a compatible dataset. Used by the update paths
  /// (cache-table merge, compaction) and by workload generators.
  void AppendFrom(const Dataset& other, uint32_t idx);

  /// Read access. Calling the accessor that does not match kind() is a
  /// programming error (asserts in debug builds).
  std::span<const float> Vector(uint32_t i) const;
  std::string_view String(uint32_t i) const;

  /// Storage footprint of one object / of the whole payload, in bytes.
  /// Used by the device-memory accounting.
  uint64_t ObjectBytes(uint32_t i) const;
  uint64_t TotalBytes() const;

  /// Returns a new dataset containing exactly the objects in `ids`, in order.
  Dataset Slice(std::span<const uint32_t> ids) const;

  /// True when `other` can donate objects to this dataset.
  bool CompatibleWith(const Dataset& other) const {
    return kind_ == other.kind_ && dim_ == other.dim_;
  }

  /// Binary serialization (used by GtsIndex::SaveTo / Load).
  void Serialize(std::ostream& out) const;
  static Result<Dataset> Deserialize(std::istream& in);

 private:
  Dataset(DataKind kind, uint32_t dim) : kind_(kind), dim_(dim) {}

  DataKind kind_;
  uint32_t dim_ = 0;
  uint32_t size_ = 0;
  std::vector<float> flat_;        // kFloatVector payload, size_ * dim_
  std::vector<uint32_t> offsets_;  // kString: size_ + 1 offsets into chars_
  std::string chars_;              // kString payload
};

}  // namespace gts

#endif  // GTS_METRIC_DATASET_H_
