// Seeded synthetic generators reproducing the *statistical* structure of the
// paper's five real datasets (Table 2) at laptop scale — see DESIGN.md §2
// for the substitution rationale. Cardinalities are scaled; metric type,
// dimensionality and cluster structure match the originals.
#ifndef GTS_DATA_GENERATORS_H_
#define GTS_DATA_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "metric/dataset.h"
#include "metric/distance.h"

namespace gts {

enum class DatasetId { kWords, kTLoc, kVector, kDna, kColor };

inline constexpr DatasetId kAllDatasets[] = {
    DatasetId::kWords, DatasetId::kTLoc, DatasetId::kVector, DatasetId::kDna,
    DatasetId::kColor};

struct DatasetSpec {
  DatasetId id;
  const char* name;
  MetricKind metric;
  /// Scaled default cardinality used by tests/benches (the paper's default:
  /// 100% of each dataset, 20% of Color — §6.1).
  uint32_t default_cardinality;
  /// "Full" scaled cardinality (Fig. 11 sweeps 20%..100% of this).
  uint32_t full_cardinality;
  /// The paper's default cardinality, used to scale memory budgets.
  uint64_t paper_cardinality;
  uint32_t dimensionality;  // vector dim, or max string length
};

const DatasetSpec& GetDatasetSpec(DatasetId id);

/// Generates `n` objects of the given dataset family, deterministically.
Dataset GenerateDataset(DatasetId id, uint32_t n, uint64_t seed);

/// Fig. 10 workload: only ceil(n * distinct_fraction) distinct objects; the
/// remainder are exact duplicates of random distinct ones.
Dataset GenerateWithDistinctFraction(DatasetId id, uint32_t n,
                                     double distinct_fraction, uint64_t seed);

/// Convenience: the metric each dataset family is evaluated with.
std::unique_ptr<DistanceMetric> MakeDatasetMetric(DatasetId id);

}  // namespace gts

#endif  // GTS_DATA_GENERATORS_H_
