// Query-workload tooling: query sampling and selectivity-calibrated radii.
// The paper expresses MRQ radii as "r (×0.01%)"; we reproduce that by
// choosing, per dataset, the radius whose expected selectivity equals the
// requested fraction (estimated from sampled pair distances).
#ifndef GTS_DATA_WORKLOAD_H_
#define GTS_DATA_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "metric/dataset.h"
#include "metric/distance.h"

namespace gts {

/// Samples `count` query objects from `data` (with replacement,
/// deterministic). Queries are copies of dataset objects, like the paper's
/// randomly generated queries.
Dataset SampleQueries(const Dataset& data, uint32_t count, uint64_t seed);

/// Radius whose expected result-set fraction is `selectivity`
/// (e.g. 8 * 0.0001 for the paper's default r = 8 (×0.01%)). Estimated from
/// `samples`² sampled query-object distances.
float CalibrateRadius(const Dataset& data, const DistanceMetric& metric,
                      double selectivity, uint32_t samples, uint64_t seed);

/// The paper's parameter grids (Table 3); defaults in the middle.
inline constexpr int kRadiusSteps[] = {1, 2, 4, 8, 16, 32};
inline constexpr int kDefaultRadiusStep = 8;
inline constexpr int kKValues[] = {1, 2, 4, 8, 16, 32};
inline constexpr int kDefaultK = 8;
inline constexpr int kBatchSizes[] = {16, 32, 64, 128, 256, 512};
inline constexpr int kDefaultBatch = 128;
inline constexpr int kNodeCapacities[] = {10, 20, 40, 80, 160, 320};
inline constexpr int kDefaultNodeCapacity = 20;

}  // namespace gts

#endif  // GTS_DATA_WORKLOAD_H_
