#include "data/generators.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

#include "common/rng.h"

namespace gts {

namespace {

// Scaled defaults (DESIGN.md §2). DNA reads are shortened from 108 to 64
// characters to keep the O(len²) edit-distance benchmarks tractable on one
// core; the clustered mutation structure is preserved.
constexpr DatasetSpec kSpecs[] = {
    {DatasetId::kWords, "Words", MetricKind::kEdit, 8000, 8000, 611756, 34},
    {DatasetId::kTLoc, "T-Loc", MetricKind::kL2, 20000, 20000, 10000000, 2},
    {DatasetId::kVector, "Vector", MetricKind::kAngularCosine, 4000, 4000,
     200000, 300},
    {DatasetId::kDna, "DNA", MetricKind::kEdit, 1200, 1200, 1000000, 64},
    {DatasetId::kColor, "Color", MetricKind::kL1, 10000, 50000, 1000000, 282},
};

std::string RandomWord(Rng* rng, uint32_t min_len, uint32_t max_len) {
  const uint32_t len =
      min_len + static_cast<uint32_t>(rng->UniformU64(max_len - min_len + 1));
  std::string w(len, 'a');
  for (auto& ch : w) {
    ch = static_cast<char>('a' + rng->UniformU64(26));
  }
  return w;
}

std::string MutateWord(const std::string& base, Rng* rng, uint32_t max_edits,
                       const char* alphabet, uint32_t alphabet_size,
                       uint32_t max_len) {
  std::string w = base;
  const uint32_t edits =
      static_cast<uint32_t>(rng->UniformU64(max_edits + 1));
  for (uint32_t e = 0; e < edits; ++e) {
    const uint64_t op = rng->UniformU64(3);
    const char ch = alphabet[rng->UniformU64(alphabet_size)];
    if (op == 0 && w.size() < max_len) {  // insert
      w.insert(w.begin() + rng->UniformU64(w.size() + 1), ch);
    } else if (op == 1 && w.size() > 1) {  // delete
      w.erase(w.begin() + rng->UniformU64(w.size()));
    } else if (!w.empty()) {  // substitute
      w[rng->UniformU64(w.size())] = ch;
    }
  }
  return w;
}

Dataset GenerateWords(uint32_t n, uint64_t seed) {
  // Morphological clusters: root words plus edit-distance variants, like
  // the Moby proper nouns / compound words corpus.
  static const char kAlpha[] = "abcdefghijklmnopqrstuvwxyz";
  Rng rng(seed);
  Dataset data = Dataset::Strings();
  const uint32_t num_roots = std::max<uint32_t>(1, n / 20);
  std::vector<std::string> roots;
  roots.reserve(num_roots);
  for (uint32_t i = 0; i < num_roots; ++i) {
    roots.push_back(RandomWord(&rng, 2, 14));
  }
  for (uint32_t i = 0; i < n; ++i) {
    const std::string& root = roots[rng.UniformU64(roots.size())];
    data.AppendString(MutateWord(root, &rng, 6, kAlpha, 26, 34));
  }
  return data;
}

Dataset GenerateTLoc(uint32_t n, uint64_t seed) {
  // Geolocations: a Gaussian mixture around city centres plus sparse
  // uniform noise, in a [0, 100]² degree-like box.
  Rng rng(seed);
  Dataset data = Dataset::FloatVectors(2);
  constexpr uint32_t kCities = 32;
  float cx[kCities], cy[kCities], cs[kCities];
  for (uint32_t c = 0; c < kCities; ++c) {
    cx[c] = rng.UniformFloat(0.0f, 100.0f);
    cy[c] = rng.UniformFloat(0.0f, 100.0f);
    cs[c] = rng.UniformFloat(0.3f, 2.5f);
  }
  for (uint32_t i = 0; i < n; ++i) {
    float p[2];
    if (rng.UniformDouble() < 0.05) {
      p[0] = rng.UniformFloat(0.0f, 100.0f);
      p[1] = rng.UniformFloat(0.0f, 100.0f);
    } else {
      const uint32_t c = static_cast<uint32_t>(rng.UniformU64(kCities));
      p[0] = cx[c] + cs[c] * static_cast<float>(rng.NormalDouble());
      p[1] = cy[c] + cs[c] * static_cast<float>(rng.NormalDouble());
    }
    data.AppendVector(p);
  }
  return data;
}

Dataset GenerateVector(uint32_t n, uint64_t seed) {
  // Word-embedding-like vectors: a mixture of directions on the 300-d
  // sphere with intra-cluster angular noise and varying magnitudes.
  Rng rng(seed);
  constexpr uint32_t kDim = 300;
  constexpr uint32_t kClusters = 64;
  Dataset data = Dataset::FloatVectors(kDim);
  std::vector<float> centers(kClusters * kDim);
  for (auto& v : centers) v = static_cast<float>(rng.NormalDouble());
  // Heterogeneous cluster dispersions keep the pairwise angular-distance
  // distribution smooth (embedding corpora are not uniformly tight).
  std::vector<float> spread(kClusters);
  for (auto& s : spread) s = rng.UniformFloat(0.2f, 1.4f);
  std::vector<float> obj(kDim);
  for (uint32_t i = 0; i < n; ++i) {
    const uint32_t c = static_cast<uint32_t>(rng.UniformU64(kClusters));
    const float mag = rng.UniformFloat(0.5f, 3.0f);
    for (uint32_t d = 0; d < kDim; ++d) {
      obj[d] = centers[c * kDim + d] +
               spread[c] * static_cast<float>(rng.NormalDouble());
      obj[d] *= mag;
    }
    data.AppendVector(obj);
  }
  return data;
}

Dataset GenerateDna(uint32_t n, uint64_t seed) {
  // Sequencing reads: ancestor sequences mutated by substitutions/indels.
  static const char kBases[] = "ACGT";
  Rng rng(seed);
  Dataset data = Dataset::Strings();
  const uint32_t kLen = GetDatasetSpec(DatasetId::kDna).dimensionality;
  const uint32_t num_ancestors = std::max<uint32_t>(1, n / 25);
  std::vector<std::string> ancestors;
  for (uint32_t a = 0; a < num_ancestors; ++a) {
    std::string s(kLen, 'A');
    for (auto& ch : s) ch = kBases[rng.UniformU64(4)];
    ancestors.push_back(std::move(s));
  }
  for (uint32_t i = 0; i < n; ++i) {
    const std::string& anc = ancestors[rng.UniformU64(ancestors.size())];
    data.AppendString(
        MutateWord(anc, &rng, kLen / 8, kBases, 4, kLen + kLen / 8));
  }
  return data;
}

Dataset GenerateColor(uint32_t n, uint64_t seed) {
  // Image feature histograms: non-negative, mostly sparse 282-d vectors
  // around prototype feature profiles, L1-comparable.
  Rng rng(seed);
  constexpr uint32_t kDim = 282;
  constexpr uint32_t kPrototypes = 40;
  Dataset data = Dataset::FloatVectors(kDim);
  std::vector<float> protos(kPrototypes * kDim, 0.0f);
  for (uint32_t p = 0; p < kPrototypes; ++p) {
    // Each prototype concentrates mass on a sparse support set.
    const uint32_t support = 20 + static_cast<uint32_t>(rng.UniformU64(40));
    for (uint32_t s = 0; s < support; ++s) {
      protos[p * kDim + rng.UniformU64(kDim)] = rng.UniformFloat(0.1f, 1.0f);
    }
  }
  std::vector<float> obj(kDim);
  for (uint32_t i = 0; i < n; ++i) {
    const uint32_t p = static_cast<uint32_t>(rng.UniformU64(kPrototypes));
    float sum = 0.0f;
    for (uint32_t d = 0; d < kDim; ++d) {
      float v = protos[p * kDim + d];
      if (v > 0.0f || rng.UniformDouble() < 0.05) {
        v = std::max(0.0f, v + 0.15f * static_cast<float>(rng.NormalDouble()));
      }
      obj[d] = v;
      sum += v;
    }
    if (sum > 0.0f) {
      for (auto& v : obj) v /= sum;  // histogram normalization
    }
    data.AppendVector(obj);
  }
  return data;
}

}  // namespace

const DatasetSpec& GetDatasetSpec(DatasetId id) {
  return kSpecs[static_cast<int>(id)];
}

Dataset GenerateDataset(DatasetId id, uint32_t n, uint64_t seed) {
  switch (id) {
    case DatasetId::kWords: return GenerateWords(n, seed);
    case DatasetId::kTLoc: return GenerateTLoc(n, seed);
    case DatasetId::kVector: return GenerateVector(n, seed);
    case DatasetId::kDna: return GenerateDna(n, seed);
    case DatasetId::kColor: return GenerateColor(n, seed);
  }
  return Dataset::Strings();
}

Dataset GenerateWithDistinctFraction(DatasetId id, uint32_t n,
                                     double distinct_fraction, uint64_t seed) {
  const uint32_t distinct = std::max<uint32_t>(
      1, static_cast<uint32_t>(std::ceil(n * distinct_fraction)));
  Dataset base = GenerateDataset(id, std::min(distinct, n), seed);
  Rng rng(seed ^ 0xD15717C7u);
  while (base.size() < n) {
    base.AppendFrom(base, static_cast<uint32_t>(rng.UniformU64(distinct)));
  }
  return base;
}

std::unique_ptr<DistanceMetric> MakeDatasetMetric(DatasetId id) {
  return MakeMetric(GetDatasetSpec(id).metric);
}

}  // namespace gts
