#include "data/workload.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace gts {

Dataset SampleQueries(const Dataset& data, uint32_t count, uint64_t seed) {
  Rng rng(seed);
  Dataset queries = data.kind() == DataKind::kFloatVector
                        ? Dataset::FloatVectors(data.dim())
                        : Dataset::Strings();
  for (uint32_t i = 0; i < count && !data.empty(); ++i) {
    queries.AppendFrom(data,
                       static_cast<uint32_t>(rng.UniformU64(data.size())));
  }
  return queries;
}

float CalibrateRadius(const Dataset& data, const DistanceMetric& metric,
                      double selectivity, uint32_t samples, uint64_t seed) {
  if (data.size() < 2) return 0.0f;
  Rng rng(seed);
  const uint32_t count = std::min<uint32_t>(samples, data.size());
  std::vector<float> dists;
  dists.reserve(static_cast<size_t>(count) * count);
  std::vector<uint32_t> qs(count), os(count);
  for (uint32_t i = 0; i < count; ++i) {
    qs[i] = static_cast<uint32_t>(rng.UniformU64(data.size()));
    os[i] = static_cast<uint32_t>(rng.UniformU64(data.size()));
  }
  for (uint32_t i = 0; i < count; ++i) {
    for (uint32_t j = 0; j < count; ++j) {
      dists.push_back(metric.Distance(data, qs[i], os[j]));
    }
  }
  std::sort(dists.begin(), dists.end());
  const double clamped = std::clamp(selectivity, 0.0, 1.0);
  size_t idx = static_cast<size_t>(clamped * (dists.size() - 1));
  idx = std::min(idx, dists.size() - 1);
  return dists[idx];
}

}  // namespace gts
