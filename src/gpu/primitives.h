// Device-wide parallel primitives of the simulator: ParallelFor,
// encode-sort (the paper's global partitioning workhorse), reductions,
// scans and top-k selection. Each primitive executes on the host and
// charges the device clock according to the lane-parallel model.
#ifndef GTS_GPU_PRIMITIVES_H_
#define GTS_GPU_PRIMITIVES_H_

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "gpu/device.h"
#include "metric/distance.h"

namespace gts::gpu {

/// Executes fn(i) for i in [0, n) as one kernel of n work items costing
/// `ops_per_item` elementary operations each.
template <typename Fn>
void ParallelFor(Device* device, uint64_t n, double ops_per_item, Fn&& fn) {
  for (uint64_t i = 0; i < n; ++i) fn(i);
  device->clock().ChargeKernel(n, static_cast<uint64_t>(ops_per_item * n));
}

/// Charges one kernel of distance computations whose elementary-op cost is
/// measured from the metric's per-thread op counter (exact even while other
/// threads compute distances concurrently — the kernel's work never leaves
/// this thread). Work items are the individual distance evaluations; pass
/// kAutoItems when the count is not known upfront (it is then taken from
/// the call-count delta). Charges the device's shared clock, or — for
/// callers that fold concurrent timelines with SimClock::MergeConcurrent,
/// like the per-call query contexts — any private clock. Usage:
///   { KernelDistanceScope scope(device, metric, items);
///     ... compute distances via metric ... }
class KernelDistanceScope {
 public:
  static constexpr uint64_t kAutoItems = 0;

  KernelDistanceScope(SimClock* clock, const DistanceMetric* metric,
                      uint64_t items)
      : clock_(clock), items_(items),
        start_(DistanceMetric::ThreadStats()) {
    (void)metric;  // the per-thread counters are metric-instance-agnostic
  }
  KernelDistanceScope(Device* device, const DistanceMetric* metric,
                      uint64_t items)
      : KernelDistanceScope(&device->clock(), metric, items) {}
  ~KernelDistanceScope() {
    const DistanceStats now = DistanceMetric::ThreadStats();
    const uint64_t items =
        items_ != kAutoItems ? items_ : now.calls - start_.calls;
    if (items > 0) {
      clock_->ChargeKernel(items, now.ops - start_.ops);
    }
  }
  KernelDistanceScope(const KernelDistanceScope&) = delete;
  KernelDistanceScope& operator=(const KernelDistanceScope&) = delete;

 private:
  SimClock* clock_;
  uint64_t items_;
  DistanceStats start_;
};

/// Sorts `values` by `keys` (both permuted), charging a device sort.
/// This is the global concurrent sort of Algorithm 3.
void SortPairsByKey(Device* device, std::span<double> keys,
                    std::span<uint32_t> values);

/// Variant carrying the table list through the sort: permutes `objects` and
/// `dis` together by ascending `keys`. The paper decodes distances back from
/// the encoded keys; carrying the exact float values instead costs the same
/// on the model and avoids decode rounding (DESIGN.md §5).
void SortTableByKey(Device* device, std::span<double> keys,
                    std::span<uint32_t> objects, std::span<float> dis);

/// Device-wide maximum over floats (0 for empty input).
float ReduceMax(Device* device, std::span<const float> values);

/// Exclusive prefix sum.
void ExclusiveScan(Device* device, std::span<const uint32_t> in,
                   std::span<uint32_t> out);

/// Returns the indices of the k smallest values (delegate-centric partial
/// selection in the spirit of Dr. Top-k [23]): lanes-many segments produce
/// local candidates which are then merged and sorted.
std::vector<uint32_t> SelectKSmallest(Device* device,
                                      std::span<const float> values,
                                      uint32_t k);

}  // namespace gts::gpu

#endif  // GTS_GPU_PRIMITIVES_H_
