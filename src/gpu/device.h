// Simulated GPU device: a tracked global-memory budget plus a SimClock.
// DeviceBuffer<T> is the RAII allocation primitive; exceeding the budget
// yields StatusCode::kMemoryLimit, which is how the paper's OOM / memory-
// deadlock episodes (Table 4, Figs. 9 and 11) are reproduced.
#ifndef GTS_GPU_DEVICE_H_
#define GTS_GPU_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "gpu/sim_clock.h"

namespace gts::gpu {

struct DeviceOptions {
  /// Concurrent computing power C of the paper's cost model.
  uint32_t lanes = kDefaultGpuLanes;
  /// Global-memory budget. Default models a scaled-down 11 GB card; the
  /// benchmark harness sets per-experiment values (see bench/harness.cc).
  uint64_t memory_bytes = 256ull << 20;
  double ns_per_op = kGpuNsPerOp;
  double launch_overhead_ns = kGpuLaunchOverheadNs;
};

/// Thread-safe: allocation accounting is mutex-guarded and the clock charges
/// atomically, so concurrent query threads may share one device.
class Device {
 public:
  explicit Device(DeviceOptions options = {});

  /// Reserves `bytes` of device memory; fails with kMemoryLimit when the
  /// budget would be exceeded. `what` names the allocation for diagnostics.
  Status Allocate(uint64_t bytes, const char* what) EXCLUDES(mu_);
  /// Releases a prior reservation.
  void Free(uint64_t bytes) EXCLUDES(mu_);

  uint64_t memory_bytes() const {
    return memory_bytes_.load(std::memory_order_relaxed);
  }
  /// Changes the budget (Fig. 8 sweeps GPU memory). Does not touch current
  /// reservations; an over-budget state simply fails future allocations.
  void set_memory_bytes(uint64_t bytes) {
    memory_bytes_.store(bytes, std::memory_order_relaxed);
  }

  uint64_t allocated_bytes() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return allocated_bytes_;
  }
  uint64_t peak_allocated_bytes() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return peak_allocated_bytes_;
  }
  void ResetPeak() EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    peak_allocated_bytes_ = allocated_bytes_;
  }

  SimClock& clock() { return clock_; }
  const SimClock& clock() const { return clock_; }
  uint32_t lanes() const { return options_.lanes; }

 private:
  DeviceOptions options_;
  SimClock clock_;
  std::atomic<uint64_t> memory_bytes_;
  mutable Mutex mu_;
  uint64_t allocated_bytes_ GUARDED_BY(mu_) = 0;
  uint64_t peak_allocated_bytes_ GUARDED_BY(mu_) = 0;
};

/// RAII device allocation backed by host storage (the simulator executes on
/// the host; the Device accounts the memory). Move-only.
template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;

  static Result<DeviceBuffer<T>> Create(Device* device, size_t n,
                                        const char* what) {
    const uint64_t bytes = static_cast<uint64_t>(n) * sizeof(T);
    GTS_RETURN_IF_ERROR(device->Allocate(bytes, what));
    DeviceBuffer<T> buf;
    buf.device_ = device;
    buf.bytes_ = bytes;
    buf.data_.resize(n);
    return buf;
  }

  ~DeviceBuffer() { Release(); }

  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;
  DeviceBuffer(DeviceBuffer&& other) noexcept { *this = std::move(other); }
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept {
    if (this != &other) {
      Release();
      device_ = other.device_;
      bytes_ = other.bytes_;
      data_ = std::move(other.data_);
      other.device_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }

  size_t size() const { return data_.size(); }
  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  std::vector<T>& vec() { return data_; }
  const std::vector<T>& vec() const { return data_; }

 private:
  void Release() {
    if (device_ != nullptr) device_->Free(bytes_);
    device_ = nullptr;
    bytes_ = 0;
  }

  Device* device_ = nullptr;
  uint64_t bytes_ = 0;
  std::vector<T> data_;
};

}  // namespace gts::gpu

#endif  // GTS_GPU_DEVICE_H_
