#include "gpu/primitives.h"

#include <cassert>

namespace gts::gpu {

void SortPairsByKey(Device* device, std::span<double> keys,
                    std::span<uint32_t> values) {
  assert(keys.size() == values.size());
  const size_t n = keys.size();
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  std::stable_sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
    return keys[a] < keys[b];
  });
  std::vector<double> keys_out(n);
  std::vector<uint32_t> values_out(n);
  for (size_t i = 0; i < n; ++i) {
    keys_out[i] = keys[perm[i]];
    values_out[i] = values[perm[i]];
  }
  std::copy(keys_out.begin(), keys_out.end(), keys.begin());
  std::copy(values_out.begin(), values_out.end(), values.begin());
  device->clock().ChargeSort(n);
}

void SortTableByKey(Device* device, std::span<double> keys,
                    std::span<uint32_t> objects, std::span<float> dis) {
  assert(keys.size() == objects.size() && keys.size() == dis.size());
  const size_t n = keys.size();
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  std::stable_sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
    return keys[a] < keys[b];
  });
  std::vector<double> keys_out(n);
  std::vector<uint32_t> objects_out(n);
  std::vector<float> dis_out(n);
  for (size_t i = 0; i < n; ++i) {
    keys_out[i] = keys[perm[i]];
    objects_out[i] = objects[perm[i]];
    dis_out[i] = dis[perm[i]];
  }
  std::copy(keys_out.begin(), keys_out.end(), keys.begin());
  std::copy(objects_out.begin(), objects_out.end(), objects.begin());
  std::copy(dis_out.begin(), dis_out.end(), dis.begin());
  device->clock().ChargeSort(n);
}

float ReduceMax(Device* device, std::span<const float> values) {
  float best = 0.0f;
  for (const float v : values) best = std::max(best, v);
  device->clock().ChargeScan(values.size());
  return best;
}

void ExclusiveScan(Device* device, std::span<const uint32_t> in,
                   std::span<uint32_t> out) {
  assert(in.size() == out.size());
  uint32_t running = 0;
  for (size_t i = 0; i < in.size(); ++i) {
    out[i] = running;
    running += in[i];
  }
  device->clock().ChargeScan(in.size());
}

std::vector<uint32_t> SelectKSmallest(Device* device,
                                      std::span<const float> values,
                                      uint32_t k) {
  const size_t n = values.size();
  if (k == 0 || n == 0) return {};
  std::vector<uint32_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0u);
  const size_t kk = std::min<size_t>(k, n);
  std::partial_sort(idx.begin(), idx.begin() + kk, idx.end(),
                    [&](uint32_t a, uint32_t b) {
                      if (values[a] != values[b]) return values[a] < values[b];
                      return a < b;
                    });
  idx.resize(kk);
  // Charged as the delegate-centric two-phase selection: a full pass to
  // produce per-lane candidates, then a merge of lanes*k candidates.
  device->clock().ChargeScan(n);
  device->clock().ChargeSort(
      std::min<uint64_t>(n, uint64_t{device->lanes()} * k));
  return idx;
}

}  // namespace gts::gpu
