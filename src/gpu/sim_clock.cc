#include "gpu/sim_clock.h"

#include <cmath>

namespace gts::gpu {

namespace {
inline uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }
}  // namespace

void SimClock::ChargeKernel(uint64_t items, uint64_t total_ops) {
  if (items == 0) return;
  kernels_launched_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t waves = CeilDiv(items, config_.lanes);
  const double ops_per_item =
      static_cast<double>(total_ops) / static_cast<double>(items);
  AddNs(static_cast<double>(waves) * ops_per_item * config_.ns_per_op +
        config_.launch_overhead_ns);
}

void SimClock::MergeConcurrent(double start_ns, double delta_ns,
                               uint64_t kernels) {
  kernels_launched_.fetch_add(kernels, std::memory_order_relaxed);
  const double target = start_ns + delta_ns;
  double cur = elapsed_ns_.load(std::memory_order_relaxed);
  while (cur < target && !elapsed_ns_.compare_exchange_weak(
                             cur, target, std::memory_order_relaxed)) {
  }
}

void SimClock::ChargeSort(uint64_t n) {
  if (n <= 1) return;
  kernels_launched_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t waves = CeilDiv(n, config_.lanes);
  const double log_n = std::log2(static_cast<double>(n));
  AddNs(static_cast<double>(waves) * kSortOpsPerKey * log_n *
            config_.ns_per_op +
        config_.launch_overhead_ns);
}

void SimClock::ChargeScan(uint64_t n) {
  if (n == 0) return;
  kernels_launched_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t waves = CeilDiv(n, config_.lanes);
  AddNs(static_cast<double>(waves) * 2.0 * config_.ns_per_op +
        config_.launch_overhead_ns);
}

}  // namespace gts::gpu
