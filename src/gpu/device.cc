#include "gpu/device.h"

namespace gts::gpu {

Device::Device(DeviceOptions options)
    : options_(options),
      clock_(ClockConfig{.lanes = options.lanes,
                         .ns_per_op = options.ns_per_op,
                         .launch_overhead_ns = options.launch_overhead_ns}) {}

Status Device::Allocate(uint64_t bytes, const char* what) {
  if (allocated_bytes_ + bytes > options_.memory_bytes) {
    return Status::MemoryLimit(
        std::string(what) + ": requested " + std::to_string(bytes) +
        " B with " + std::to_string(allocated_bytes_) + " B in use of " +
        std::to_string(options_.memory_bytes) + " B device memory");
  }
  allocated_bytes_ += bytes;
  if (allocated_bytes_ > peak_allocated_bytes_) {
    peak_allocated_bytes_ = allocated_bytes_;
  }
  return Status::Ok();
}

void Device::Free(uint64_t bytes) {
  allocated_bytes_ = (bytes > allocated_bytes_) ? 0 : allocated_bytes_ - bytes;
}

}  // namespace gts::gpu
