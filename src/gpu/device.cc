#include "gpu/device.h"

namespace gts::gpu {

Device::Device(DeviceOptions options)
    : options_(options),
      clock_(ClockConfig{.lanes = options.lanes,
                         .ns_per_op = options.ns_per_op,
                         .launch_overhead_ns = options.launch_overhead_ns}),
      memory_bytes_(options.memory_bytes) {}

Status Device::Allocate(uint64_t bytes, const char* what) {
  const uint64_t budget = memory_bytes();
  MutexLock lock(&mu_);
  if (allocated_bytes_ + bytes > budget) {
    return Status::MemoryLimit(
        std::string(what) + ": requested " + std::to_string(bytes) +
        " B with " + std::to_string(allocated_bytes_) + " B in use of " +
        std::to_string(budget) + " B device memory");
  }
  allocated_bytes_ += bytes;
  if (allocated_bytes_ > peak_allocated_bytes_) {
    peak_allocated_bytes_ = allocated_bytes_;
  }
  return Status::Ok();
}

void Device::Free(uint64_t bytes) {
  MutexLock lock(&mu_);
  allocated_bytes_ = (bytes > allocated_bytes_) ? 0 : allocated_bytes_ - bytes;
}

}  // namespace gts::gpu
