// Simulated execution clocks.
//
// This environment has no CUDA device (and a single CPU core), so the paper's
// performance comparisons are reproduced with an execution-model simulator:
// algorithms run for real (producing exact results), while their *time* is
// accounted on a simulated clock parameterized by
//   - lanes: number of concurrently executing lanes (GPU ≈ thousands,
//     CPU baseline ≈ 1),
//   - ns_per_op: cost of one elementary operation on one lane,
//   - launch_overhead_ns: fixed cost per kernel launch (0 for the host).
// A kernel processing `items` work items whose total measured work is
// `total_ops` elementary operations costs
//   ceil(items / lanes) * (total_ops / items) * ns_per_op + launch_overhead.
// Elementary-op counts come from the real computation (metric op counters,
// DP cells, comparisons), so the model is driven by measured work.
#ifndef GTS_GPU_SIM_CLOCK_H_
#define GTS_GPU_SIM_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace gts::gpu {

/// Calibration constants (documented in DESIGN.md §2). The CPU:GPU per-lane
/// speed ratio models "one fast SIMD core vs thousands of slow lanes":
/// 0.05 ns/op ≈ 20 Gop/s for a vectorized single core, so the full-device
/// gap is 4096 lanes / (1.2/0.05) ≈ 170x — the paper's "up to two orders of
/// magnitude" band.
inline constexpr double kGpuNsPerOp = 1.2;
inline constexpr double kCpuNsPerOp = 0.05;
inline constexpr double kGpuLaunchOverheadNs = 3000.0;
inline constexpr uint32_t kDefaultGpuLanes = 4096;
/// Host-to-device transfer cost (~12 GB/s PCIe 3).
inline constexpr double kPcieNsPerByte = 0.08;

struct ClockConfig {
  uint32_t lanes = kDefaultGpuLanes;
  double ns_per_op = kGpuNsPerOp;
  double launch_overhead_ns = kGpuLaunchOverheadNs;
};

/// Accumulates simulated time. Charging is thread-safe (relaxed atomic
/// accumulation), so concurrent query threads may share one clock without
/// data races. Deliberately lock-free: this sits on every query's hot
/// path, so there is no mutex here for the thread-safety analysis to
/// check — the contract is "every member is a std::atomic, or const
/// after construction" (config_), and the invariant linter's
/// naked-primitives rule keeps it that way. Concurrent callers that want parallel-makespan semantics
/// (overlapping work counted once, not summed) accumulate on a private
/// SimClock and fold it in with MergeConcurrent on completion — the
/// per-call QueryContext clocks in core/gts.h do exactly that, so
/// concurrent queries advance the shared clock by the max of their
/// per-call times instead of over-charging it with the sum.
class SimClock {
 public:
  SimClock() = default;
  explicit SimClock(ClockConfig config) : config_(config) {}

  const ClockConfig& config() const { return config_; }

  /// Charges one kernel over `items` work items with `total_ops` measured
  /// elementary operations. No-op when items == 0.
  void ChargeKernel(uint64_t items, uint64_t total_ops);

  /// Charges a device-wide comparison sort of n keys
  /// (bitonic/radix-style: ceil(n/lanes) * log2^2(n)-ish; we use
  /// ceil(n/lanes) * kSortOpsPerKey * log2(n) as in [30]).
  void ChargeSort(uint64_t n);

  /// Charges a device-wide scan / reduction over n items.
  void ChargeScan(uint64_t n);

  /// Adds raw nanoseconds (e.g. host-device transfer models).
  void ChargeRawNs(double ns) { AddNs(ns); }

  /// Folds a concurrently-accumulated sub-timeline into this clock. The
  /// sub-timeline started when this clock read `start_ns` and accumulated
  /// `delta_ns` of simulated time and `kernels` launches; the clock
  /// advances to at least start_ns + delta_ns. Sub-timelines that began at
  /// the same reading therefore combine as their parallel makespan (max),
  /// while serial callers (each starting after the previous merge) still
  /// sum exactly as if they had charged this clock directly.
  void MergeConcurrent(double start_ns, double delta_ns, uint64_t kernels);

  double ElapsedNs() const {
    return elapsed_ns_.load(std::memory_order_relaxed);
  }
  double ElapsedSeconds() const { return ElapsedNs() * 1e-9; }
  uint64_t kernels_launched() const {
    return kernels_launched_.load(std::memory_order_relaxed);
  }

  void Reset() {
    elapsed_ns_.store(0.0, std::memory_order_relaxed);
    kernels_launched_.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr double kSortOpsPerKey = 4.0;

  // CAS loop instead of atomic<double>::fetch_add: identical semantics,
  // supported by every toolchain in the CI matrix.
  void AddNs(double ns) {
    double cur = elapsed_ns_.load(std::memory_order_relaxed);
    while (!elapsed_ns_.compare_exchange_weak(cur, cur + ns,
                                              std::memory_order_relaxed)) {
    }
  }

  ClockConfig config_;
  std::atomic<double> elapsed_ns_{0.0};
  std::atomic<uint64_t> kernels_launched_{0};
};

/// Clock configuration for CPU (host) baselines: one lane, faster per-op,
/// no kernel-launch overhead.
inline ClockConfig HostClockConfig() {
  return ClockConfig{.lanes = 1, .ns_per_op = kCpuNsPerOp,
                     .launch_overhead_ns = 0.0};
}

}  // namespace gts::gpu

#endif  // GTS_GPU_SIM_CLOCK_H_
