// Status / Result error-handling primitives (exception-free, RocksDB-style).
#ifndef GTS_COMMON_STATUS_H_
#define GTS_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace gts {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kMemoryLimit,   ///< device / host memory budget exceeded (paper: OOM)
  kDeadlock,      ///< fixed-buffer overflow in a GPU method (paper: memory deadlock)
  kUnsupported,   ///< method does not support this metric / data kind
  kNotFound,
  kResourceExhausted,  ///< admission control refused the work (queue full)
  kUnavailable,  ///< a replica/backend failed to serve; retrying elsewhere
                 ///< may succeed (the sharded frontend's failover signal)
  kInternal,
};

/// Returns a human-readable name for a status code.
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error value. All fallible public APIs return
/// Status (or Result<T>) instead of throwing.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status MemoryLimit(std::string m) {
    return Status(StatusCode::kMemoryLimit, std::move(m));
  }
  static Status Deadlock(std::string m) {
    return Status(StatusCode::kDeadlock, std::move(m));
  }
  static Status Unsupported(std::string m) {
    return Status(StatusCode::kUnsupported, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : var_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Status status) : var_(std::move(status)) {    // NOLINT(runtime/explicit)
    assert(!std::get<Status>(var_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(var_); }
  const T& value() const& {
    assert(ok());
    return std::get<T>(var_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(var_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(var_));
  }
  Status status() const {
    return ok() ? Status::Ok() : std::get<Status>(var_);
  }

 private:
  std::variant<T, Status> var_;
};

#define GTS_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::gts::Status gts_status_tmp_ = (expr);         \
    if (!gts_status_tmp_.ok()) return gts_status_tmp_; \
  } while (0)

}  // namespace gts

#endif  // GTS_COMMON_STATUS_H_
