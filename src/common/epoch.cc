#include "common/epoch.h"

#include <algorithm>
#include <thread>

namespace gts::epoch {

Domain::~Domain() {
  // By contract no guard is live; everything left in limbo is unreachable.
  MutexLock lock(&limbo_mu_);
  for (const Limbo& item : limbo_) item.deleter(item.ptr);
  reclaimed_.fetch_add(limbo_.size(), std::memory_order_relaxed);
  limbo_.clear();
}

uint64_t Domain::MinActiveEpoch() const {
  uint64_t min_active = global_.load(std::memory_order_seq_cst);
  for (const Slot& slot : slots_) {
    const uint64_t e = slot.epoch.load(std::memory_order_seq_cst);
    if (e != kIdle) min_active = std::min(min_active, e);
  }
  return min_active;
}

void Domain::Retire(void* p, void (*deleter)(void*)) {
  // The stamp is the epoch at which `p` was unpublished: fetch_add returns
  // the pre-increment value, and any guard pinned at stamp or later can
  // only have loaded the replacement (the caller unpublishes before
  // retiring). Items reclaim once every pinned epoch exceeds their stamp.
  const uint64_t stamp = global_.fetch_add(1, std::memory_order_seq_cst);
  retired_.fetch_add(1, std::memory_order_relaxed);
  {
    MutexLock lock(&limbo_mu_);
    limbo_.push_back(Limbo{p, deleter, stamp});
  }
  Reclaim();
}

void Domain::Reclaim() {
  // Scan slots AFTER taking the limbo mutex: a guard pinned after the scan
  // starts holds an epoch >= some value the scan already accounted for
  // (epochs only grow), so it cannot protect an item the scan frees.
  MutexLock lock(&limbo_mu_);
  if (limbo_.empty()) return;
  const uint64_t min_active = MinActiveEpoch();
  auto doomed = std::partition(
      limbo_.begin(), limbo_.end(),
      [min_active](const Limbo& item) { return item.stamp >= min_active; });
  for (auto it = doomed; it != limbo_.end(); ++it) it->deleter(it->ptr);
  reclaimed_.fetch_add(static_cast<uint64_t>(limbo_.end() - doomed),
                       std::memory_order_relaxed);
  limbo_.erase(doomed, limbo_.end());
}

size_t Domain::limbo_size() const {
  MutexLock lock(&limbo_mu_);
  return limbo_.size();
}

size_t Domain::active_guards() const {
  size_t n = 0;
  for (const Slot& slot : slots_) {
    if (slot.epoch.load(std::memory_order_seq_cst) != kIdle) ++n;
  }
  return n;
}

Guard::Guard(Domain* domain) : domain_(domain) {
  // Start probing at a thread-sticky slot so repeat pins from the same
  // reader thread stay on one cache line instead of racing the array.
  static thread_local size_t hint = 0;
  for (;;) {
    for (size_t probe = 0; probe < Domain::kSlots; ++probe) {
      const size_t i = (hint + probe) % Domain::kSlots;
      // Read the global epoch BEFORE claiming the slot: the pinned value
      // must be <= the stamp of any item retired after this pin becomes
      // visible, or Reclaim could free state this guard is about to load.
      const uint64_t e = domain_->global_.load(std::memory_order_seq_cst);
      uint64_t expected = Domain::kIdle;
      if (domain_->slots_[i].epoch.compare_exchange_strong(
              expected, e, std::memory_order_seq_cst)) {
        hint = i;
        slot_ = i;
        return;
      }
    }
    // All slots busy — more than kSlots simultaneous guards. Back off;
    // some guard will release (readers never block inside a guard).
    std::this_thread::yield();
  }
}

void Guard::Release() {
  if (domain_ == nullptr) return;
  domain_->slots_[slot_].epoch.store(Domain::kIdle,
                                     std::memory_order_seq_cst);
  domain_ = nullptr;
}

}  // namespace gts::epoch
