// Environment-variable configuration helpers used by the benchmark harness
// (e.g. GTS_BENCH_SCALE to grow/shrink workloads).
#ifndef GTS_COMMON_ENV_H_
#define GTS_COMMON_ENV_H_

#include <cstdint>
#include <string>

namespace gts {

/// Reads an integer env var, returning `def` when unset or malformed.
int64_t GetEnvInt64(const char* name, int64_t def);

/// Reads a double env var, returning `def` when unset or malformed.
double GetEnvDouble(const char* name, double def);

/// Reads a string env var, returning `def` when unset.
std::string GetEnvString(const char* name, const std::string& def);

}  // namespace gts

#endif  // GTS_COMMON_ENV_H_
