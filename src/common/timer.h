// Wall-clock timer for the benchmark harness (real elapsed time, as opposed
// to the simulated device clock in gpu/sim_clock.h).
#ifndef GTS_COMMON_TIMER_H_
#define GTS_COMMON_TIMER_H_

#include <chrono>

namespace gts {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gts

#endif  // GTS_COMMON_TIMER_H_
