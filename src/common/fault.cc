#include "common/fault.h"

#include <cstddef>
#include <cstdlib>
#include <utility>
#include <vector>

#include "common/env.h"

namespace gts::fault {

namespace {

/// FNV-1a over the site name — the same stable hash the sharded frontend
/// routes with, so site streams are identical across platforms.
uint64_t HashSite(const std::string& site) {
  uint64_t h = 1469598103934665603ull;
  for (const char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// Splits `spec` ("a=b,c=d") on commas; empty pieces are skipped.
std::vector<std::string> SplitComma(const std::string& spec) {
  std::vector<std::string> out;
  size_t begin = 0;
  while (begin <= spec.size()) {
    const size_t end = spec.find(',', begin);
    const size_t stop = end == std::string::npos ? spec.size() : end;
    if (stop > begin) out.push_back(spec.substr(begin, stop - begin));
    if (end == std::string::npos) break;
    begin = end + 1;
  }
  return out;
}

}  // namespace

Registry& Registry::Instance() {
  static Registry* registry = new Registry();  // never destroyed
  return *registry;
}

Registry::Registry()
    : seed_(static_cast<uint64_t>(
          GetEnvInt64("GTS_FAULT_SEED", 0x6774735f6661756cll))) {
  // GTS_FAULTS arms sites at startup: `site=probability[@key]`, comma
  // separated. Malformed entries are ignored (env plumbing must never
  // turn a typo into an abort inside a serving process).
  const std::string faults = GetEnvString("GTS_FAULTS", "");
  for (const std::string& entry : SplitComma(faults)) {
    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) continue;
    FaultSpec spec;
    const std::string value = entry.substr(eq + 1);
    const size_t at = value.find('@');
    char* end = nullptr;
    spec.probability = std::strtod(value.c_str(), &end);
    if (end == value.c_str()) continue;
    if (at != std::string::npos) {
      const std::string key = value.substr(at + 1);
      char* key_end = nullptr;
      const uint64_t parsed = std::strtoull(key.c_str(), &key_end, 10);
      if (key_end == key.c_str()) continue;
      spec.has_match_key = true;
      spec.match_key = parsed;
    }
    Arm(entry.substr(0, eq), spec);
  }
}

Registry::Site Registry::MakeSite(const std::string& site,
                                  const FaultSpec& spec) const {
  // Per-site stream: the k-th evaluation of a site fires identically for
  // a fixed registry seed no matter what other sites are armed or how
  // threads interleave — sites never share a generator.
  return Site{spec, Rng(seed_ ^ HashSite(site)), 0, SiteCounters{}};
}

void Registry::Arm(const std::string& site, const FaultSpec& spec) {
  MutexLock lock(&mu_);
  auto [it, inserted] = sites_.insert_or_assign(site, MakeSite(site, spec));
  (void)it;
  if (inserted) armed_.fetch_add(1, std::memory_order_relaxed);
}

void Registry::Disarm(const std::string& site) {
  MutexLock lock(&mu_);
  if (sites_.erase(site) > 0) {
    armed_.fetch_sub(1, std::memory_order_relaxed);
  }
}

bool Registry::TryGet(const std::string& site, FaultSpec* out) const {
  MutexLock lock(&mu_);
  const auto it = sites_.find(site);
  if (it == sites_.end()) return false;
  *out = it->second.spec;
  return true;
}

SiteCounters Registry::Counters(const std::string& site) const {
  MutexLock lock(&mu_);
  const auto it = sites_.find(site);
  return it == sites_.end() ? SiteCounters{} : it->second.counters;
}

uint64_t Registry::seed() const {
  MutexLock lock(&mu_);
  return seed_;
}

void Registry::ResetForTest(uint64_t seed) {
  MutexLock lock(&mu_);
  armed_.fetch_sub(sites_.size(), std::memory_order_relaxed);
  sites_.clear();
  seed_ = seed;
}

bool Registry::Evaluate(const char* site, uint64_t key, uint64_t* delay_out) {
  // THE fast path: a registry with nothing armed costs one relaxed load —
  // no lock, no RNG, no counter. This is what makes threading injection
  // sites through serving hot paths free in ordinary runs.
  if (armed_.load(std::memory_order_relaxed) == 0) return false;
  MutexLock lock(&mu_);
  const auto it = sites_.find(site);
  if (it == sites_.end()) return false;
  Site& s = it->second;
  if (s.spec.has_match_key && key != s.spec.match_key) return false;
  const uint64_t idx = s.trips++;
  ++s.counters.evaluations;
  const bool in_window =
      idx >= s.spec.fail_after &&
      idx - s.spec.fail_after < s.spec.fail_count;
  bool fire = false;
  if (in_window) {
    fire = s.spec.probability >= 1.0 ||
           (s.spec.probability > 0.0 &&
            s.rng.UniformDouble() < s.spec.probability);
  }
  if (fire) {
    ++s.counters.fires;
    if (delay_out != nullptr) *delay_out = s.spec.delay_micros;
  }
  return fire;
}

bool Registry::Trip(const char* site, uint64_t key) {
  return Evaluate(site, key, nullptr);
}

uint64_t Registry::TripDelayMicros(const char* site, uint64_t key) {
  uint64_t delay = 0;
  Evaluate(site, key, &delay);
  return delay;
}

ScopedFaultForTest::ScopedFaultForTest(std::string site,
                                       const FaultSpec& spec)
    : site_(std::move(site)) {
  Registry& registry = Registry::Instance();
  had_previous_ = registry.TryGet(site_, &previous_);
  registry.Arm(site_, spec);
}

ScopedFaultForTest::~ScopedFaultForTest() {
  Registry& registry = Registry::Instance();
  if (had_previous_) {
    registry.Arm(site_, previous_);
  } else {
    registry.Disarm(site_);
  }
}

}  // namespace gts::fault
