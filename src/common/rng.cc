#include "common/rng.h"

#include <cmath>

namespace gts {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformU64(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::UniformDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

float Rng::UniformFloat(float lo, float hi) {
  return lo + static_cast<float>(UniformDouble()) * (hi - lo);
}

double Rng::NormalDouble() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  while (u1 <= 1e-12) u1 = UniformDouble();
  const double u2 = UniformDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  cached_normal_ = mag * std::sin(2.0 * M_PI * u2);
  have_cached_normal_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace gts
