// Process-wide deterministic fault injection. Serving-layer code threads
// named injection sites through its failure-handling paths (e.g.
// `session.flush` in QuerySession::RunFlush, `shard.read` /
// `shard.write-ack` in ShardedFrontend's gathers, `executor.task-delay`
// in QueryExecutor::WorkerLoop) and asks the registry at each site
// whether to simulate a failure. Sites are DISARMED by default and the
// disarmed fast path is one relaxed atomic load — zero armed faults adds
// no observable behavior change (no RNG draw, no lock, no counter), a
// contract tests/fault_injection_test.cc and the CI kernel-dispatch
// fingerprint diff enforce.
//
// Determinism: every site draws from its own xoshiro256** stream seeded
// from the registry seed XOR a stable hash of the site name, and fire
// decisions are indexed by the site's evaluation count — so for a fixed
// seed the k-th evaluation of a site fires identically across runs and
// platforms, regardless of which thread performs it. Arming a site
// (re)starts its schedule from evaluation 0. The chaos soak logs the
// seed on failure and replays it via GTS_FAULT_SEED.
//
// Control surface:
//  - Programmatic: Registry::Instance().Arm/Disarm, or the RAII
//    ScopedFaultForTest which restores the prior spec (schedule
//    restarted) on scope exit.
//  - Environment, read once at first use: GTS_FAULT_SEED (integer seed,
//    the chaos soak's replay knob) and GTS_FAULTS, a comma-separated
//    list of `site=probability[@key]` entries armed at startup (e.g.
//    GTS_FAULTS='shard.read=0.3@1' makes every `shard.read` evaluation
//    carrying key 1 fail with probability 0.3).
//
// Thread-safety: all members are safe to call concurrently; armed-site
// evaluation serializes on one registry mutex (fault runs are diagnostic
// harness runs, not production hot paths).
#ifndef GTS_COMMON_FAULT_H_
#define GTS_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <string>

#include "common/rng.h"
#include "common/thread_annotations.h"

namespace gts::fault {

/// One site's armed schedule. The k-th evaluation of the site (0-based,
/// counting only evaluations whose key matches) fires iff
///   k >= fail_after  AND  k < fail_after + fail_count  AND
///   (probability >= 1.0 OR the site's next uniform draw < probability).
struct FaultSpec {
  /// Per-evaluation fire probability; >= 1.0 fires every evaluation in
  /// the window (and consumes no RNG draw), <= 0.0 never fires.
  double probability = 1.0;
  /// Evaluations to let through unharmed before the window opens.
  uint64_t fail_after = 0;
  /// Evaluations the window spans once open (default: forever).
  uint64_t fail_count = std::numeric_limits<uint64_t>::max();
  /// Modeled extra latency TripDelayMicros reports on a firing
  /// evaluation (Trip ignores it; delay sites are separate site names).
  uint64_t delay_micros = 0;
  /// When set, only evaluations carrying `match_key` participate in the
  /// schedule; other keys pass untouched and do not advance it. The
  /// serving layer keys read/write sites by REPLICA index, so one spec
  /// with match_key=1 fails replica 1 of every shard.
  bool has_match_key = false;
  uint64_t match_key = 0;
};

/// Per-site trip accounting (armed sites only; a disarmed site counts
/// nothing — that is the no-behavior-change fast path).
struct SiteCounters {
  uint64_t evaluations = 0;  ///< schedule evaluations (matching key)
  uint64_t fires = 0;        ///< evaluations that injected a failure
};

/// The process-wide registry. See the file comment.
class Registry {
 public:
  /// The singleton; first call reads GTS_FAULT_SEED / GTS_FAULTS.
  static Registry& Instance();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Evaluates `site` once: true = the caller must simulate a failure
  /// here. `key` identifies the sub-target (replica index, worker
  /// index); see FaultSpec::match_key.
  bool Trip(const char* site, uint64_t key = 0) EXCLUDES(mu_);

  /// Delay-flavored evaluation: the spec's delay_micros on a firing
  /// evaluation, 0 otherwise.
  uint64_t TripDelayMicros(const char* site, uint64_t key = 0) EXCLUDES(mu_);

  /// Arms (or re-arms, restarting the schedule and counters of) `site`.
  void Arm(const std::string& site, const FaultSpec& spec) EXCLUDES(mu_);
  /// Disarms `site`; a no-op when not armed.
  void Disarm(const std::string& site) EXCLUDES(mu_);
  /// Copies the armed spec of `site` into `*out`; false when disarmed.
  bool TryGet(const std::string& site, FaultSpec* out) const EXCLUDES(mu_);
  /// The site's accounting since it was (last) armed; zeros if disarmed.
  SiteCounters Counters(const std::string& site) const EXCLUDES(mu_);
  /// Currently armed sites.
  uint64_t armed_sites() const {
    return armed_.load(std::memory_order_relaxed);
  }
  /// The seed site schedules derive from.
  uint64_t seed() const EXCLUDES(mu_);

  /// Test hook: disarms every site and replaces the seed, so a test (or
  /// a chaos replay) starts from a clean, reproducible registry state.
  void ResetForTest(uint64_t seed) EXCLUDES(mu_);

 private:
  Registry();

  struct Site {
    FaultSpec spec;
    Rng rng;
    uint64_t trips = 0;  ///< schedule index of the next evaluation
    SiteCounters counters;
  };

  /// Shared body of Trip / TripDelayMicros: evaluates the site's
  /// schedule once and reports whether it fired.
  bool Evaluate(const char* site, uint64_t key, uint64_t* delay_out)
      EXCLUDES(mu_);
  /// Builds a freshly-seeded schedule state for `site` under `spec`.
  Site MakeSite(const std::string& site, const FaultSpec& spec) const
      REQUIRES(mu_);

  /// Armed-site count, mirrored outside the mutex: the disarmed-registry
  /// fast path in Trip is one relaxed load of this.
  std::atomic<uint64_t> armed_{0};
  mutable Mutex mu_;
  uint64_t seed_ GUARDED_BY(mu_);
  std::map<std::string, Site> sites_ GUARDED_BY(mu_);
};

/// RAII arming for tests: arms `site` with `spec` on construction and on
/// destruction restores what was armed before (schedule restarted) — or
/// disarms, when nothing was.
class ScopedFaultForTest {
 public:
  ScopedFaultForTest(std::string site, const FaultSpec& spec);
  ~ScopedFaultForTest();
  ScopedFaultForTest(const ScopedFaultForTest&) = delete;
  ScopedFaultForTest& operator=(const ScopedFaultForTest&) = delete;

 private:
  std::string site_;
  bool had_previous_ = false;
  FaultSpec previous_;
};

}  // namespace gts::fault

#endif  // GTS_COMMON_FAULT_H_
