// Epoch-based reclamation for lock-free read paths.
//
// The publication pattern this protects (core/gts.h's versioned index
// state, after pramalhe/bundledrefs-style versioned structures):
//
//   reader                          writer (serialized externally)
//   ──────                          ──────────────────────────────
//   Guard g(&domain);   // pin      build replacement state
//   v = current.load(); // read     old = current.exchange(next);
//   ... use *v ...                  domain.Retire(old);  // deferred free
//   ~g;                 // unpin
//
// A retired object is freed only once every guard that could possibly
// have observed it has been released: Retire stamps the object with the
// domain's current epoch, advances the epoch, and frees exactly the limbo
// items whose stamp precedes every live guard's pinned epoch. Readers
// therefore never block, never take a lock, and never touch freed memory;
// writers pay one mutex-protected limbo-list push per retirement.
//
// Memory-ordering sketch (all cross-thread operations below are seq_cst):
// a guard pins a slot with an epoch read from the global counter BEFORE
// loading the published pointer. If the load still observed the old
// pointer, the pin preceded the writer's publication in the seq_cst total
// order, so the writer's post-retire slot scan sees the pinned epoch
// (which is <= the retire stamp, as the epoch only grows) and keeps the
// item. If the scan saw the slot idle, the reader's load is ordered after
// the publication and observes the replacement — either way no guard can
// hold a freed version. See tests/epoch_test.cc for the liveness and
// reclamation unit tests (run under ASan in CI).
#ifndef GTS_COMMON_EPOCH_H_
#define GTS_COMMON_EPOCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/thread_annotations.h"

namespace gts::epoch {

class Guard;

/// One reclamation domain: a fixed array of guard slots, a global epoch
/// counter, and a limbo list of retired objects awaiting reclamation.
/// Thread-safe: any number of threads may pin guards and retire objects
/// concurrently (retirements serialize on an internal mutex; pin/unpin is
/// lock-free). A domain typically lives inside the structure it protects
/// (one per GtsIndex) and must outlive every Guard pinned on it.
class Domain {
 public:
  Domain() = default;
  /// Frees everything still in limbo. No guard may be live.
  ~Domain();
  Domain(const Domain&) = delete;
  Domain& operator=(const Domain&) = delete;

  /// Hands `p` to the domain for deferred deletion: `deleter(p)` runs once
  /// no live guard can still observe it (possibly inside this call, when
  /// no guard is pinned). Advances the global epoch.
  void Retire(void* p, void (*deleter)(void*)) EXCLUDES(limbo_mu_);

  /// Typed convenience over the raw Retire.
  template <typename T>
  void Retire(T* p) {
    Retire(const_cast<std::remove_const_t<T>*>(p),
           [](void* q) { delete static_cast<T*>(q); });
  }

  /// Attempts to free limbo items that no live guard protects. Retire
  /// calls this automatically; explicit calls are for tests and for
  /// draining after the last guard of a quiescent phase releases.
  void Reclaim() EXCLUDES(limbo_mu_);

  /// Current global epoch (starts at 1, advances once per Retire).
  uint64_t epoch() const { return global_.load(std::memory_order_seq_cst); }
  /// Objects handed to Retire since construction.
  uint64_t retired_count() const {
    return retired_.load(std::memory_order_relaxed);
  }
  /// Objects whose deleter has run since construction.
  uint64_t reclaimed_count() const {
    return reclaimed_.load(std::memory_order_relaxed);
  }
  /// Retired objects still awaiting reclamation.
  size_t limbo_size() const EXCLUDES(limbo_mu_);
  /// Guards currently pinned (a point-in-time scan, for tests/monitoring).
  size_t active_guards() const;

  /// Guard slots available; more simultaneous guards than this spin in
  /// Guard's constructor until a slot frees.
  static constexpr size_t kSlots = 64;

 private:
  friend class Guard;

  static constexpr uint64_t kIdle = ~0ull;

  struct alignas(64) Slot {
    std::atomic<uint64_t> epoch{kIdle};
  };

  struct Limbo {
    void* ptr;
    void (*deleter)(void*);
    uint64_t stamp;
  };

  /// Smallest epoch pinned by any live guard; the current global epoch
  /// when none is pinned. Items stamped strictly below it are safe.
  uint64_t MinActiveEpoch() const;

  std::atomic<uint64_t> global_{1};
  std::vector<Slot> slots_{kSlots};

  mutable Mutex limbo_mu_;
  std::vector<Limbo> limbo_ GUARDED_BY(limbo_mu_);
  std::atomic<uint64_t> retired_{0};
  std::atomic<uint64_t> reclaimed_{0};
};

/// RAII pin on a Domain: objects retired after construction stay alive
/// until destruction. Movable (ownership of the pinned slot transfers),
/// not copyable. Unlike a std::shared_lock, a Guard is thread-agnostic —
/// it may be released on a different thread than it was acquired on,
/// which is how a pinned read view travels through a worker pool.
class Guard {
 public:
  explicit Guard(Domain* domain);
  ~Guard() { Release(); }

  Guard(Guard&& other) noexcept
      : domain_(other.domain_), slot_(other.slot_) {
    other.domain_ = nullptr;
  }
  Guard& operator=(Guard&& other) noexcept {
    if (this != &other) {
      Release();
      domain_ = other.domain_;
      slot_ = other.slot_;
      other.domain_ = nullptr;
    }
    return *this;
  }
  Guard(const Guard&) = delete;
  Guard& operator=(const Guard&) = delete;

 private:
  void Release();

  Domain* domain_ = nullptr;
  size_t slot_ = 0;
};

}  // namespace gts::epoch

#endif  // GTS_COMMON_EPOCH_H_
