// Deterministic pseudo-random number generation (SplitMix64 seeding +
// xoshiro256** core). Every stochastic component of the library draws from
// these generators so all builds, datasets and experiments are reproducible.
#ifndef GTS_COMMON_RNG_H_
#define GTS_COMMON_RNG_H_

#include <cstdint>

namespace gts {

/// SplitMix64 step; used to expand a single seed into generator state.
uint64_t SplitMix64(uint64_t* state);

/// xoshiro256** generator. Deterministic, fast, good statistical quality.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t UniformU64(uint64_t bound);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform float in [lo, hi).
  float UniformFloat(float lo, float hi);

  /// Standard normal via Box-Muller.
  double NormalDouble();

  /// Fork a child generator with an independent stream.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace gts

#endif  // GTS_COMMON_RNG_H_
