#include "common/status.h"

namespace gts {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kMemoryLimit: return "MemoryLimit";
    case StatusCode::kDeadlock: return "Deadlock";
    case StatusCode::kUnsupported: return "Unsupported";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
    case StatusCode::kUnavailable: return "Unavailable";
    case StatusCode::kInternal: return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace gts
