// Clang Thread Safety Analysis: the compile-time locking contract.
//
// Every mutex in src/ is a gts::Mutex declared here, every piece of shared
// state names the mutex that guards it with GUARDED_BY, and every function
// that assumes a lock is held says so with REQUIRES. Under clang the whole
// tree builds with -Wthread-safety -Wthread-safety-beta -Werror (see the
// thread-safety CI job), so an unguarded access, a forgotten unlock, or a
// REQUIRES call on the wrong mutex is a build break, not a TSan roll of the
// dice. Under gcc the macros expand to nothing and the wrappers are
// zero-cost shims over the std primitives.
//
// This header is the ONLY file in src/ allowed to spell std::mutex,
// std::lock_guard, std::condition_variable and friends;
// tools/check_invariants.py enforces that textually, and the compile-fail
// fixtures under tests/compile_fail/ prove the analysis actually fires.

#ifndef GTS_COMMON_THREAD_ANNOTATIONS_H_
#define GTS_COMMON_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define GTS_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define GTS_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op off clang
#endif

#define CAPABILITY(x) GTS_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

#define SCOPED_CAPABILITY GTS_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

#define GUARDED_BY(x) GTS_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

#define PT_GUARDED_BY(x) GTS_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) \
  GTS_THREAD_ANNOTATION_ATTRIBUTE_(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) \
  GTS_THREAD_ANNOTATION_ATTRIBUTE_(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
  GTS_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  GTS_THREAD_ANNOTATION_ATTRIBUTE_(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) \
  GTS_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  GTS_THREAD_ANNOTATION_ATTRIBUTE_(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) \
  GTS_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  GTS_THREAD_ANNOTATION_ATTRIBUTE_(release_shared_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  GTS_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))

#define EXCLUDES(...) GTS_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) \
  GTS_THREAD_ANNOTATION_ATTRIBUTE_(assert_capability(x))

#define RETURN_CAPABILITY(x) GTS_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
  GTS_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

namespace gts {

// Annotated exclusive mutex. Lock()/Unlock() are the project-facing API;
// the lowercase lock()/unlock() aliases satisfy BasicLockable so CondVar
// (std::condition_variable_any underneath) can wait on it directly.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // BasicLockable, for std::condition_variable_any. The std wait
  // implementation unlocks/relocks from inside a system header, where the
  // analysis suppresses its diagnostics — which is exactly right: the
  // caller's capability is unchanged across a Wait.
  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

// RAII lock for a Mutex: the scoped counterpart the analysis tracks.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

// Condition variable over gts::Mutex. There are no predicate overloads on
// purpose: a predicate lambda is analyzed as a separate function and cannot
// see the caller's capability, so guarded reads inside it would defeat the
// analysis. Callers write the standard loop instead —
//
//   while (!condition) cv_.Wait(&mu_);
//
// — which keeps the guarded reads in the annotated function body.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu) REQUIRES(mu) { cv_.wait(*mu); }

  // Returns true if the wait timed out (deadline passed before a signal).
  template <typename Clock, typename Duration>
  bool WaitUntil(Mutex* mu,
                 const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mu) {
    return cv_.wait_until(*mu, deadline) == std::cv_status::timeout;
  }

  void SignalOne() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace gts

#endif  // GTS_COMMON_THREAD_ANNOTATIONS_H_
