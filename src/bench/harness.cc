#include "bench/harness.h"

#include <cinttypes>
#include <cstdio>

#include "common/env.h"
#include "common/timer.h"

namespace gts::bench {

namespace {
// Paper testbed: 11 GB device, 128 GB host. The host base is reduced to
// 1.2 GB-equivalent so the scaled budgets reproduce EGNAT's construction
// OOM on T-Loc (Table 4) — calibration documented in DESIGN.md §2.
constexpr double kDeviceBaseBytes = 11e9;
constexpr double kHostBaseBytes = 1.2e9;
}  // namespace

double EnvScale() { return GetEnvDouble("GTS_BENCH_SCALE", 1.0); }

uint64_t DeviceBudgetBytes(const DatasetSpec& spec, double scale) {
  const double ratio = static_cast<double>(spec.default_cardinality) * scale /
                       static_cast<double>(spec.paper_cardinality);
  return static_cast<uint64_t>(kDeviceBaseBytes * ratio);
}

uint64_t HostBudgetBytes(const DatasetSpec& spec, double scale) {
  const double ratio = static_cast<double>(spec.default_cardinality) * scale /
                       static_cast<double>(spec.paper_cardinality);
  return static_cast<uint64_t>(kHostBaseBytes * ratio);
}

BenchEnv MakeEnv(DatasetId id, uint32_t n_override) {
  const double scale = EnvScale();
  BenchEnv env;
  env.id = id;
  env.spec = &GetDatasetSpec(id);
  const uint32_t n =
      n_override != 0
          ? n_override
          : static_cast<uint32_t>(env.spec->default_cardinality * scale);
  env.data = GenerateDataset(id, n, /*seed=*/1234 + static_cast<int>(id));
  env.metric = MakeDatasetMetric(id);
  gpu::DeviceOptions options;
  options.memory_bytes = DeviceBudgetBytes(*env.spec, scale);
  // Fixed per-kernel costs must shrink with the workload: at 1/ρ of the
  // paper's cardinality, an unscaled launch overhead would dominate every
  // kernel and erase the variable-cost structure the figures measure.
  const double ratio = static_cast<double>(env.spec->default_cardinality) *
                       scale / static_cast<double>(env.spec->paper_cardinality);
  options.launch_overhead_ns =
      std::max(1.0, gpu::kGpuLaunchOverheadNs * ratio);
  env.device = std::make_unique<gpu::Device>(options);
  env.host_budget = HostBudgetBytes(*env.spec, scale);
  return env;
}

float RadiusForStep(const BenchEnv& env, int step) {
  return CalibrateRadius(env.data, *env.metric, step * 1e-4,
                         /*samples=*/200, /*seed=*/7);
}

Measurement MeasureBuild(SimilarityIndex* method, const BenchEnv& env) {
  Measurement m;
  WallTimer timer;
  method->ResetClocks();
  m.status = method->Build(&env.data, env.metric.get());
  m.sim_seconds = method->SimSeconds();
  m.wall_seconds = timer.ElapsedSeconds();
  return m;
}

Measurement MeasureRange(SimilarityIndex* method, const Dataset& queries,
                         std::span<const float> radii) {
  Measurement m;
  WallTimer timer;
  method->ResetClocks();
  auto res = method->RangeBatch(queries, radii);
  m.status = res.status();
  m.sim_seconds = method->SimSeconds();
  m.wall_seconds = timer.ElapsedSeconds();
  return m;
}

Measurement MeasureKnn(SimilarityIndex* method, const Dataset& queries,
                       uint32_t k) {
  Measurement m;
  WallTimer timer;
  method->ResetClocks();
  auto res = method->KnnBatch(queries, k);
  m.status = res.status();
  m.sim_seconds = method->SimSeconds();
  m.wall_seconds = timer.ElapsedSeconds();
  return m;
}

double ThroughputPerMin(uint32_t batch, double sim_seconds) {
  if (sim_seconds <= 0.0) return 0.0;
  return static_cast<double>(batch) / sim_seconds * 60.0;
}

std::string FormatThroughput(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3g", v);
  return buf;
}

std::string FormatFailure(const Status& status) {
  switch (status.code()) {
    case StatusCode::kMemoryLimit: return "OOM";
    case StatusCode::kDeadlock: return "DEADLOCK";
    case StatusCode::kUnsupported: return "/";
    default: return std::string("ERR(") + StatusCodeName(status.code()) + ")";
  }
}

const std::vector<MethodId>& AllMethods() {
  static const std::vector<MethodId> kMethods = {
      MethodId::kBst,      MethodId::kEgnat,   MethodId::kMvpt,
      MethodId::kGpuTable, MethodId::kGpuTree, MethodId::kLbpgTree,
      MethodId::kGanns,    MethodId::kGts};
  return kMethods;
}

const std::vector<MethodId>& UpdateMethods() {
  static const std::vector<MethodId> kMethods = {
      MethodId::kBst,      MethodId::kEgnat,    MethodId::kMvpt,
      MethodId::kGpuTree,  MethodId::kLbpgTree, MethodId::kGanns,
      MethodId::kGts};
  return kMethods;
}

void PrintRule(char c, int width) {
  for (int i = 0; i < width; ++i) std::putchar(c);
  std::putchar('\n');
}

}  // namespace gts::bench
