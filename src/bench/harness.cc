#include "bench/harness.h"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/env.h"
#include "common/timer.h"

namespace gts::bench {

namespace {
// Paper testbed: 11 GB device, 128 GB host. The host base is reduced to
// 1.2 GB-equivalent so the scaled budgets reproduce EGNAT's construction
// OOM on T-Loc (Table 4) — calibration documented in DESIGN.md §2.
constexpr double kDeviceBaseBytes = 11e9;
constexpr double kHostBaseBytes = 1.2e9;
}  // namespace

double EnvScale() { return GetEnvDouble("GTS_BENCH_SCALE", 1.0); }

uint64_t DeviceBudgetBytes(const DatasetSpec& spec, double scale) {
  const double ratio = static_cast<double>(spec.default_cardinality) * scale /
                       static_cast<double>(spec.paper_cardinality);
  return static_cast<uint64_t>(kDeviceBaseBytes * ratio);
}

uint64_t HostBudgetBytes(const DatasetSpec& spec, double scale) {
  const double ratio = static_cast<double>(spec.default_cardinality) * scale /
                       static_cast<double>(spec.paper_cardinality);
  return static_cast<uint64_t>(kHostBaseBytes * ratio);
}

BenchEnv MakeEnv(DatasetId id, uint32_t n_override) {
  const double scale = EnvScale();
  BenchEnv env;
  env.id = id;
  env.spec = &GetDatasetSpec(id);
  const uint32_t n =
      n_override != 0
          ? n_override
          : static_cast<uint32_t>(env.spec->default_cardinality * scale);
  env.data = GenerateDataset(id, n, /*seed=*/1234 + static_cast<int>(id));
  env.metric = MakeDatasetMetric(id);
  gpu::DeviceOptions options;
  options.memory_bytes = DeviceBudgetBytes(*env.spec, scale);
  // Fixed per-kernel costs must shrink with the workload: at 1/ρ of the
  // paper's cardinality, an unscaled launch overhead would dominate every
  // kernel and erase the variable-cost structure the figures measure.
  const double ratio = static_cast<double>(env.spec->default_cardinality) *
                       scale / static_cast<double>(env.spec->paper_cardinality);
  options.launch_overhead_ns =
      std::max(1.0, gpu::kGpuLaunchOverheadNs * ratio);
  env.device = std::make_unique<gpu::Device>(options);
  env.host_budget = HostBudgetBytes(*env.spec, scale);
  return env;
}

float RadiusForStep(const BenchEnv& env, int step) {
  return CalibrateRadius(env.data, *env.metric, step * 1e-4,
                         /*samples=*/200, /*seed=*/7);
}

std::string SeriesName(std::string_view method, std::string_view op,
                       std::string_view config) {
  std::string name = std::string(method) + "/";
  name += op;
  if (!config.empty()) {
    name += "@";
    name += config;
  }
  return name;
}

Measurement MeasureBuild(SimilarityIndex* method, const BenchEnv& env,
                         std::string_view config) {
  Measurement m;
  WallTimer timer;
  method->ResetClocks();
  m.status = method->Build(&env.data, env.metric.get());
  m.sim_seconds = method->SimSeconds();
  m.wall_seconds = timer.ElapsedSeconds();
  if (m.status.ok()) {
    GlobalReporter().AddSample(SeriesName(method->Name(), "build", config),
                               env.spec->name, m.sim_seconds, 1);
  }
  return m;
}

Measurement MeasureRange(SimilarityIndex* method, const BenchEnv& env,
                         const Dataset& queries, std::span<const float> radii,
                         std::string_view config) {
  Measurement m;
  WallTimer timer;
  method->ResetClocks();
  auto res = method->RangeBatch(queries, radii);
  m.status = res.status();
  m.sim_seconds = method->SimSeconds();
  m.wall_seconds = timer.ElapsedSeconds();
  if (m.status.ok()) {
    GlobalReporter().AddSample(SeriesName(method->Name(), "mrq", config),
                               env.spec->name, m.sim_seconds, queries.size());
  }
  return m;
}

Measurement MeasureKnn(SimilarityIndex* method, const BenchEnv& env,
                       const Dataset& queries, uint32_t k,
                       std::string_view config) {
  Measurement m;
  WallTimer timer;
  method->ResetClocks();
  auto res = method->KnnBatch(queries, k);
  m.status = res.status();
  m.sim_seconds = method->SimSeconds();
  m.wall_seconds = timer.ElapsedSeconds();
  if (m.status.ok()) {
    GlobalReporter().AddSample(SeriesName(method->Name(), "knn", config),
                               env.spec->name, m.sim_seconds, queries.size());
  }
  return m;
}

double ThroughputPerMin(uint32_t batch, double sim_seconds) {
  if (sim_seconds <= 0.0) return 0.0;
  return static_cast<double>(batch) / sim_seconds * 60.0;
}

double PercentileOf(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(samples.size())));
  return samples[std::min(samples.size() - 1, rank == 0 ? 0 : rank - 1)];
}

std::string FormatThroughput(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3g", v);
  return buf;
}

std::string FormatFailure(const Status& status) {
  switch (status.code()) {
    case StatusCode::kMemoryLimit: return "OOM";
    case StatusCode::kDeadlock: return "DEADLOCK";
    case StatusCode::kUnsupported: return "/";
    default: return std::string("ERR(") + StatusCodeName(status.code()) + ")";
  }
}

const std::vector<MethodId>& AllMethods() {
  static const std::vector<MethodId> kMethods = {
      MethodId::kBst,      MethodId::kEgnat,   MethodId::kMvpt,
      MethodId::kGpuTable, MethodId::kGpuTree, MethodId::kLbpgTree,
      MethodId::kGanns,    MethodId::kGts};
  return kMethods;
}

const std::vector<MethodId>& UpdateMethods() {
  static const std::vector<MethodId> kMethods = {
      MethodId::kBst,      MethodId::kEgnat,    MethodId::kMvpt,
      MethodId::kGpuTree,  MethodId::kLbpgTree, MethodId::kGanns,
      MethodId::kGts};
  return kMethods;
}

void PrintRule(char c, int width) {
  for (int i = 0; i < width; ++i) std::putchar(c);
  std::putchar('\n');
}

// ---------------------------------------------------------------------------
// BENCH_*.json output
// ---------------------------------------------------------------------------

namespace {

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string FormatJsonDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // JSON has no inf/nan literals; clamp to null-free sentinel 0.
  if (!std::isfinite(v)) return "0";
  return buf;
}

// Minimal parser for the flat JSON objects ToJson emits: string and number
// values only, no nesting. Enough to round-trip and validate BENCH records
// without a JSON dependency.
class FlatJsonParser {
 public:
  explicit FlatJsonParser(std::string_view in) : in_(in) {}

  // Parses `{"key": value, ...}`; returns false on malformed input.
  bool ParseObject(std::vector<std::pair<std::string, std::string>>* strings,
                   std::vector<std::pair<std::string, double>>* numbers) {
    SkipWs();
    if (!Consume('{')) return false;
    SkipWs();
    if (Consume('}')) return Done();
    while (true) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (!Consume(':')) return false;
      SkipWs();
      if (pos_ < in_.size() && in_[pos_] == '"') {
        std::string value;
        if (!ParseString(&value)) return false;
        strings->emplace_back(std::move(key), std::move(value));
      } else {
        double value = 0.0;
        if (!ParseNumber(&value)) return false;
        numbers->emplace_back(std::move(key), value);
      }
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return Done();
      return false;
    }
  }

 private:
  void SkipWs() {
    while (pos_ < in_.size() &&
           std::isspace(static_cast<unsigned char>(in_[pos_]))) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    if (pos_ < in_.size() && in_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool Done() {
    SkipWs();
    return pos_ == in_.size();
  }
  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < in_.size()) {
      const char c = in_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= in_.size()) return false;
      const char esc = in_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > in_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = in_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= h - '0';
            else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
            else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
            else return false;
          }
          if (code > 0xFF) return false;  // ASCII emitter never exceeds this
          out->push_back(static_cast<char>(code));
          break;
        }
        default: return false;
      }
    }
    return false;
  }
  bool ParseNumber(double* out) {
    // Copy the bounded number token before strtod: the string_view need not
    // be NUL-terminated, so strtod on in_.data() could scan past the view.
    size_t end = pos_;
    while (end < in_.size() &&
           (std::isdigit(static_cast<unsigned char>(in_[end])) ||
            in_[end] == '+' || in_[end] == '-' || in_[end] == '.' ||
            in_[end] == 'e' || in_[end] == 'E')) {
      ++end;
    }
    const std::string token(in_.substr(pos_, end - pos_));
    char* parsed_end = nullptr;
    *out = std::strtod(token.c_str(), &parsed_end);
    if (parsed_end != token.c_str() + token.size() || token.empty()) {
      return false;
    }
    pos_ = end;
    return true;
  }

  std::string_view in_;
  size_t pos_ = 0;
};

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  // Nearest-rank: the smallest value with at least q of the mass below it.
  const size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

}  // namespace

std::string ToJson(const BenchResult& r) {
  std::string out = "{\"name\": ";
  AppendJsonString(&out, r.name);
  out += ", \"dataset\": ";
  AppendJsonString(&out, r.dataset);
  out += ", \"samples\": " + std::to_string(r.samples);
  out += ", \"p50_latency_ms\": " + FormatJsonDouble(r.p50_latency_ms);
  out += ", \"p95_latency_ms\": " + FormatJsonDouble(r.p95_latency_ms);
  out += ", \"throughput_per_min\": " + FormatJsonDouble(r.throughput_per_min);
  out += "}";
  return out;
}

Result<BenchResult> BenchResultFromJson(std::string_view json) {
  std::vector<std::pair<std::string, std::string>> strings;
  std::vector<std::pair<std::string, double>> numbers;
  FlatJsonParser parser(json);
  if (!parser.ParseObject(&strings, &numbers)) {
    return Status::InvalidArgument("malformed BenchResult JSON");
  }
  BenchResult r;
  bool have_name = false, have_dataset = false;
  for (auto& [key, value] : strings) {
    if (key == "name") { r.name = std::move(value); have_name = true; }
    else if (key == "dataset") { r.dataset = std::move(value); have_dataset = true; }
  }
  bool have_samples = false, have_p50 = false, have_p95 = false,
       have_tput = false;
  for (const auto& [key, value] : numbers) {
    if (key == "samples") {
      // Validate before the cast: double -> uint64_t is UB out of range.
      if (value < 0.0 || value > 9.007199254740992e15) {
        return Status::InvalidArgument("BenchResult samples out of range");
      }
      r.samples = static_cast<uint64_t>(value);
      have_samples = true;
    }
    else if (key == "p50_latency_ms") { r.p50_latency_ms = value; have_p50 = true; }
    else if (key == "p95_latency_ms") { r.p95_latency_ms = value; have_p95 = true; }
    else if (key == "throughput_per_min") { r.throughput_per_min = value; have_tput = true; }
  }
  if (!have_name || !have_dataset || !have_samples || !have_p50 || !have_p95 ||
      !have_tput) {
    return Status::InvalidArgument("BenchResult JSON missing required field");
  }
  return r;
}

void BenchReporter::AddSample(std::string_view name, std::string_view dataset,
                              double sim_seconds, uint64_t items) {
  if (items == 0) return;
  Series& s = FindOrAddSeries(name, dataset);
  s.latencies_ms.push_back(sim_seconds / static_cast<double>(items) * 1e3);
  s.items += items;
  s.sim_seconds += sim_seconds;
}

void BenchReporter::AddResult(BenchResult result) {
  preaggregated_.push_back(std::move(result));
}

BenchReporter::Series& BenchReporter::FindOrAddSeries(
    std::string_view name, std::string_view dataset) {
  for (Series& s : series_) {
    if (s.name == name && s.dataset == dataset) return s;
  }
  Series s;
  s.name = std::string(name);
  s.dataset = std::string(dataset);
  series_.push_back(std::move(s));
  return series_.back();
}

std::vector<BenchResult> BenchReporter::Results() const {
  std::vector<BenchResult> out;
  out.reserve(series_.size() + preaggregated_.size());
  for (const Series& s : series_) {
    BenchResult r;
    r.name = s.name;
    r.dataset = s.dataset;
    r.samples = s.latencies_ms.size();
    std::vector<double> sorted = s.latencies_ms;
    std::sort(sorted.begin(), sorted.end());
    r.p50_latency_ms = Percentile(sorted, 0.50);
    r.p95_latency_ms = Percentile(sorted, 0.95);
    r.throughput_per_min =
        s.sim_seconds > 0.0
            ? static_cast<double>(s.items) / s.sim_seconds * 60.0
            : 0.0;
    out.push_back(std::move(r));
  }
  out.insert(out.end(), preaggregated_.begin(), preaggregated_.end());
  return out;
}

Status BenchReporter::WriteJson(const std::string& path,
                                std::string_view bench) const {
  std::string doc = "{\"bench\": ";
  AppendJsonString(&doc, bench);
  doc += ", \"schema\": \"gts-bench-v1\", \"results\": [\n";
  const std::vector<BenchResult> results = Results();
  for (size_t i = 0; i < results.size(); ++i) {
    doc += "  " + ToJson(results[i]);
    if (i + 1 < results.size()) doc += ",";
    doc += "\n";
  }
  doc += "]}\n";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::InvalidArgument("cannot open " + path);
  out << doc;
  out.flush();
  if (!out) return Status::Internal("short write to " + path);
  return Status::Ok();
}

void BenchReporter::Clear() {
  series_.clear();
  preaggregated_.clear();
}

BenchReporter& GlobalReporter() {
  static BenchReporter* reporter = new BenchReporter();
  return *reporter;
}

JsonOutput::JsonOutput(int* argc, char** argv, std::string bench_name,
                       bool allow_extra_args)
    : bench_name_(std::move(bench_name)) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      if (i + 1 < *argc && argv[i + 1][0] != '-') {
        path_ = argv[++i];
      }
      // Bare `--json` and `--json ""` both fall back to the default name.
      if (path_.empty()) path_ = "BENCH_" + bench_name_ + ".json";
    } else if (arg.rfind("--json=", 0) == 0) {
      path_ = std::string(arg.substr(std::strlen("--json=")));
      if (path_.empty()) path_ = "BENCH_" + bench_name_ + ".json";
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  argv[out] = nullptr;
  if (!allow_extra_args && *argc > 1) {
    std::fprintf(stderr, "unrecognized argument: %s (supported: --json [path])\n",
                 argv[1]);
    std::exit(2);
  }
  if (!path_.empty()) {
    // Fail fast on an unwritable path: the report is only written at exit,
    // when a bad path could no longer change the exit code.
    std::ofstream probe(path_, std::ios::binary | std::ios::app);
    if (!probe) {
      std::fprintf(stderr, "BENCH json: cannot open %s for writing\n",
                   path_.c_str());
      std::exit(2);
    }
  }
}

JsonOutput::~JsonOutput() {
  if (path_.empty()) return;
  const Status s = GlobalReporter().WriteJson(path_, bench_name_);
  if (s.ok()) {
    std::fprintf(stderr, "BENCH json written to %s\n", path_.c_str());
  } else {
    std::fprintf(stderr, "BENCH json write failed: %s\n",
                 s.ToString().c_str());
  }
}

}  // namespace gts::bench
