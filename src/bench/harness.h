// Shared benchmark harness: per-dataset environments with scaled memory
// budgets, measurement helpers reading the simulated clocks, and row
// printers producing the paper's tables/series.
//
// Budgets (DESIGN.md §2): every experiment models the paper's testbed — an
// 11 GB RTX 2080 Ti and 128 GB host — scaled by the ratio between our
// synthetic cardinality and the paper's dataset cardinality, so the OOM /
// memory-deadlock episodes of Table 4 and Figs. 9/11 reproduce at scale.
// Set GTS_BENCH_SCALE (e.g. 2.0) to grow workloads and budgets together.
#ifndef GTS_BENCH_HARNESS_H_
#define GTS_BENCH_HARNESS_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/baseline.h"
#include "data/generators.h"
#include "data/workload.h"
#include "gpu/device.h"

namespace gts::bench {

/// One dataset's experiment environment.
struct BenchEnv {
  DatasetId id = DatasetId::kWords;
  const DatasetSpec* spec = nullptr;
  Dataset data = Dataset::Strings();
  std::unique_ptr<DistanceMetric> metric;
  std::unique_ptr<gpu::Device> device;
  uint64_t host_budget = 0;

  MethodContext Context() const {
    return MethodContext{device.get(), host_budget, /*seed=*/42};
  }
};

/// GTS_BENCH_SCALE (default 1.0).
double EnvScale();

uint64_t DeviceBudgetBytes(const DatasetSpec& spec, double scale);
uint64_t HostBudgetBytes(const DatasetSpec& spec, double scale);

/// Builds the environment for a dataset; `n_override` (if nonzero) replaces
/// the scaled default cardinality (budgets stay at the default scale, as on
/// a fixed card — used by the Fig. 11 cardinality sweep).
BenchEnv MakeEnv(DatasetId id, uint32_t n_override = 0);

/// Simulated radius for a paper radius step (r = step ×0.01% selectivity).
float RadiusForStep(const BenchEnv& env, int step);

struct Measurement {
  Status status = Status::Ok();
  double sim_seconds = 0.0;
  double wall_seconds = 0.0;
};

Measurement MeasureBuild(SimilarityIndex* method, const BenchEnv& env);
Measurement MeasureRange(SimilarityIndex* method, const Dataset& queries,
                         std::span<const float> radii);
Measurement MeasureKnn(SimilarityIndex* method, const Dataset& queries,
                       uint32_t k);

/// queries/min from a batch's simulated seconds.
double ThroughputPerMin(uint32_t batch, double sim_seconds);

/// "x.xxe+yy" or the paper's failure markers: "/" (unsupported / OOM at
/// build), "DEADLOCK", "OOM".
std::string FormatThroughput(double v);
std::string FormatFailure(const Status& status);

/// The evaluation's method list in the paper's legend order.
const std::vector<MethodId>& AllMethods();
/// Methods shown in the update experiments (Fig. 5 legend).
const std::vector<MethodId>& UpdateMethods();

void PrintRule(char c = '-', int width = 96);

}  // namespace gts::bench

#endif  // GTS_BENCH_HARNESS_H_
