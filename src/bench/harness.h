// Shared benchmark harness: per-dataset environments with scaled memory
// budgets, measurement helpers reading the simulated clocks, and row
// printers producing the paper's tables/series.
//
// Budgets (DESIGN.md §2): every experiment models the paper's testbed — an
// 11 GB RTX 2080 Ti and 128 GB host — scaled by the ratio between our
// synthetic cardinality and the paper's dataset cardinality, so the OOM /
// memory-deadlock episodes of Table 4 and Figs. 9/11 reproduce at scale.
// Set GTS_BENCH_SCALE (e.g. 2.0) to grow workloads and budgets together.
#ifndef GTS_BENCH_HARNESS_H_
#define GTS_BENCH_HARNESS_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "baselines/baseline.h"
#include "data/generators.h"
#include "data/workload.h"
#include "gpu/device.h"

namespace gts::bench {

/// One dataset's experiment environment.
struct BenchEnv {
  DatasetId id = DatasetId::kWords;
  const DatasetSpec* spec = nullptr;
  Dataset data = Dataset::Strings();
  std::unique_ptr<DistanceMetric> metric;
  std::unique_ptr<gpu::Device> device;
  uint64_t host_budget = 0;

  MethodContext Context() const {
    return MethodContext{device.get(), host_budget, /*seed=*/42};
  }
};

/// GTS_BENCH_SCALE (default 1.0).
double EnvScale();

uint64_t DeviceBudgetBytes(const DatasetSpec& spec, double scale);
uint64_t HostBudgetBytes(const DatasetSpec& spec, double scale);

/// Builds the environment for a dataset; `n_override` (if nonzero) replaces
/// the scaled default cardinality (budgets stay at the default scale, as on
/// a fixed card — used by the Fig. 11 cardinality sweep).
BenchEnv MakeEnv(DatasetId id, uint32_t n_override = 0);

/// Simulated radius for a paper radius step (r = step ×0.01% selectivity).
float RadiusForStep(const BenchEnv& env, int step);

struct Measurement {
  Status status = Status::Ok();
  double sim_seconds = 0.0;
  double wall_seconds = 0.0;
};

/// `config` labels the swept benchmark parameter (e.g. "Nc=20", "r=4",
/// "k=16"); it is appended to the recorded series name so sweep points stay
/// separate records in the BENCH_*.json output.
Measurement MeasureBuild(SimilarityIndex* method, const BenchEnv& env,
                         std::string_view config = {});
Measurement MeasureRange(SimilarityIndex* method, const BenchEnv& env,
                         const Dataset& queries, std::span<const float> radii,
                         std::string_view config = {});
Measurement MeasureKnn(SimilarityIndex* method, const BenchEnv& env,
                       const Dataset& queries, uint32_t k,
                       std::string_view config = {});

/// queries/min from a batch's simulated seconds.
double ThroughputPerMin(uint32_t batch, double sim_seconds);

/// Nearest-rank percentile (ceil(q·n), the convention every recorded
/// series uses) of an UNSORTED sample; 0.0 for an empty one. The one
/// shared implementation — bench binaries must not grow private copies,
/// or the checked-in series silently mix rank conventions.
double PercentileOf(std::vector<double> samples, double q);

/// "x.xxe+yy" or the paper's failure markers: "/" (unsupported / OOM at
/// build), "DEADLOCK", "OOM".
std::string FormatThroughput(double v);
std::string FormatFailure(const Status& status);

// ---------------------------------------------------------------------------
// Machine-readable benchmark output (BENCH_*.json).
//
// Every bench binary accepts `--json <path>` (or bare `--json`, defaulting
// to BENCH_<bench>.json). The Measure* helpers record each successful
// measurement into the process-global BenchReporter; on exit the JsonOutput
// guard aggregates the samples into BenchResult records — one per
// (name, dataset) series — and writes
//   {"bench": ..., "schema": "gts-bench-v1", "results": [...]}.
// ---------------------------------------------------------------------------

/// One aggregated benchmark series. All fields are required in the JSON
/// encoding; `BenchResultFromJson` rejects records missing any of them.
struct BenchResult {
  std::string name;            ///< "<method>/<operation>" or micro-bench name
  std::string dataset;         ///< dataset label ("-" for dataset-free series)
  uint64_t samples = 0;        ///< number of recorded measurements
  double p50_latency_ms = 0.0; ///< median per-item latency (simulated ms)
  double p95_latency_ms = 0.0; ///< 95th-percentile per-item latency
  double throughput_per_min = 0.0;  ///< items per simulated minute

  bool operator==(const BenchResult&) const = default;
};

/// Canonical series name for harness-recorded measurements:
/// "<method>/<op>", plus "@<config>" when a swept parameter label is given.
/// All Measure*/AddSample recordings of paper-figure benches use this
/// scheme; the google-benchmark micro benches keep their native
/// "BM_name/arg" names, so diff tooling should key on the whole string.
std::string SeriesName(std::string_view method, std::string_view op,
                       std::string_view config = {});

/// Serializes one result as a single JSON object.
std::string ToJson(const BenchResult& r);

/// Parses a JSON object produced by ToJson. Returns kInvalidArgument on
/// malformed input or when any required field is absent.
Result<BenchResult> BenchResultFromJson(std::string_view json);

/// Collects measurement samples and aggregates them into BenchResults.
class BenchReporter {
 public:
  /// Records one measurement of `items` work items taking `sim_seconds`
  /// total; the per-item latency becomes one p50/p95 sample.
  void AddSample(std::string_view name, std::string_view dataset,
                 double sim_seconds, uint64_t items);
  /// Adds an already-aggregated result, bypassing sample aggregation — for
  /// callers whose statistics are computed elsewhere.
  void AddResult(BenchResult result);

  /// Aggregated results in first-recorded order.
  std::vector<BenchResult> Results() const;

  /// Writes {"bench": bench, "schema": ..., "results": [...]} to `path`.
  Status WriteJson(const std::string& path, std::string_view bench) const;

  void Clear();

 private:
  struct Series {
    std::string name;
    std::string dataset;
    std::vector<double> latencies_ms;  // per-item, one per AddSample call
    uint64_t items = 0;
    double sim_seconds = 0.0;
  };
  Series& FindOrAddSeries(std::string_view name, std::string_view dataset);

  std::vector<Series> series_;
  std::vector<BenchResult> preaggregated_;
};

/// The process-global reporter the Measure* helpers record into.
BenchReporter& GlobalReporter();

/// RAII guard for a bench main(): strips `--json [path]` from argc/argv and
/// writes the global reporter's BENCH_*.json on destruction when requested.
/// Exits with status 2 up front when the requested path is unwritable, or —
/// unless `allow_extra_args` is set (for binaries with their own flag
/// parser, like the google-benchmark micro benches) — when unrecognized
/// arguments remain after stripping.
class JsonOutput {
 public:
  JsonOutput(int* argc, char** argv, std::string bench_name,
             bool allow_extra_args = false);
  ~JsonOutput();
  JsonOutput(const JsonOutput&) = delete;
  JsonOutput& operator=(const JsonOutput&) = delete;

  bool enabled() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

 private:
  std::string bench_name_;
  std::string path_;
};

/// The evaluation's method list in the paper's legend order.
const std::vector<MethodId>& AllMethods();
/// Methods shown in the update experiments (Fig. 5 legend).
const std::vector<MethodId>& UpdateMethods();

void PrintRule(char c = '-', int width = 96);

}  // namespace gts::bench

#endif  // GTS_BENCH_HARNESS_H_
