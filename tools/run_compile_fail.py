#!/usr/bin/env python3
"""Compile-fail harness for the thread-safety fixtures.

Each fixture in tests/compile_fail/ seeds exactly one locking violation,
active by default; compiling with -DGTS_FIXTURE_FIXED selects the corrected
form instead. For every fixture this driver asserts both directions:

  1. seeded form FAILS to compile, and the diagnostic is a -Wthread-safety
     one (so a silently inert analysis — wrong flags, no-op macros under
     clang, a regressed wrapper — cannot pass);
  2. fixed form compiles cleanly with the same -Werror flags.

Usage:
  run_compile_fail.py --compiler <clang++> --src-dir <repo>/src \\
      --fixture-dir <repo>/tests/compile_fail

Requires a clang with -Wthread-safety; the script hard-fails on compilers
that do not recognise the flag rather than vacuously passing.
"""

import argparse
import pathlib
import subprocess
import sys

BASE_FLAGS = [
    "-std=c++20",
    "-fsyntax-only",
    "-Wall",
    "-Wextra",
    "-Wthread-safety",
    "-Wthread-safety-beta",
    "-Werror",
]


def compile_fixture(compiler, src_dir, fixture, extra_flags):
    cmd = [compiler] + BASE_FLAGS + ["-I", str(src_dir)] + extra_flags + [
        str(fixture)
    ]
    proc = subprocess.run(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True
    )
    return proc.returncode, proc.stdout


def check_compiler(compiler):
    """The analysis must exist: reject compilers without -Wthread-safety."""
    probe = subprocess.run(
        [compiler, "-Wthread-safety", "-x", "c++", "-fsyntax-only", "-"],
        input="int main(){}\n",
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    if probe.returncode != 0 or "thread-safety" in probe.stdout:
        print(f"error: {compiler} does not support -Wthread-safety:")
        print(probe.stdout)
        return False
    return True


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--compiler", required=True)
    parser.add_argument("--src-dir", required=True, type=pathlib.Path)
    parser.add_argument("--fixture-dir", required=True, type=pathlib.Path)
    args = parser.parse_args()

    if not check_compiler(args.compiler):
        return 1

    fixtures = sorted(args.fixture_dir.glob("*.cc"))
    if not fixtures:
        print(f"error: no fixtures found in {args.fixture_dir}")
        return 1

    failures = []
    for fixture in fixtures:
        # Seeded form must fail, for the right reason.
        rc, out = compile_fixture(args.compiler, args.src_dir, fixture, [])
        if rc == 0:
            failures.append(
                f"{fixture.name}: seeded violation COMPILED — the analysis "
                "did not fire"
            )
        elif "thread-safety" not in out and "-Wthread-safety" not in out:
            failures.append(
                f"{fixture.name}: seeded form failed, but not with a "
                f"thread-safety diagnostic:\n{out}"
            )
        else:
            print(f"ok   {fixture.name}: seeded form rejected")

        # Fixed form must compile warning-free.
        rc, out = compile_fixture(
            args.compiler, args.src_dir, fixture, ["-DGTS_FIXTURE_FIXED"]
        )
        if rc != 0:
            failures.append(
                f"{fixture.name}: fixed form FAILED to compile:\n{out}"
            )
        else:
            print(f"ok   {fixture.name}: fixed form clean")

    if failures:
        print(f"\n{len(failures)} compile-fail assertion(s) violated:")
        for f in failures:
            print(f"  FAIL {f}")
        return 1

    print(f"\nAll {len(fixtures)} fixtures behaved as asserted.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
