// Deterministic whole-stack query fingerprint for the kernel-dispatch CI
// matrix. Builds an index per paper dataset family, runs batched kNN and
// range queries, and folds every observable — result ids, distance float
// bits, query-stat counters, metric work counters — into one FNV-1a hash
// per dataset plus a combined digest.
//
// Two modes:
//   query_fingerprint               print one `<dataset> <hex>` line per
//                                   dataset and a final `combined <hex>`,
//                                   under whatever tier GTS_SIMD /
//                                   GTS_FORCE_SCALAR resolve to. CI runs
//                                   this once per forced tier and diffs
//                                   the outputs byte-for-byte.
//   query_fingerprint --self-check  run every tier compiled into this
//                                   binary AND runnable on this CPU
//                                   in-process (simd::ScopedTierForTest)
//                                   and fail (exit 1) unless all agree.
//                                   Registered as the
//                                   `kernel_dispatch_selfcheck` ctest.
//
// The equivalence contract this enforces is documented in metric/simd.h:
// every tier of every kernel is bitwise-identical, so the fingerprint is a
// function of the workload alone, never of the ISA that executed it.

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "core/gts.h"
#include "data/generators.h"
#include "data/workload.h"
#include "gpu/device.h"
#include "metric/simd.h"

namespace {

using namespace gts;

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void Fold(uint64_t* h, const void* bytes, size_t n) {
  const auto* p = static_cast<const unsigned char*>(bytes);
  for (size_t i = 0; i < n; ++i) {
    *h ^= p[i];
    *h *= kFnvPrime;
  }
}

template <typename T>
void FoldPod(uint64_t* h, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  Fold(h, &v, sizeof(v));
}

// Fingerprint of one dataset family's full query workload (mirrors the
// TierEquivalenceTest workload so a CI mismatch reproduces under gtest).
uint64_t FingerprintDataset(DatasetId id) {
  const uint32_t n = id == DatasetId::kDna ? 120 : 400;
  Dataset data = GenerateDataset(id, n, 17);
  const Dataset queries = SampleQueries(data, 8, 29);
  auto metric = MakeDatasetMetric(id);
  gpu::Device device;
  GtsOptions options;
  options.node_capacity = 10;
  auto built = GtsIndex::Build(std::move(data), metric.get(), &device, options);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 built.status().ToString().c_str());
    std::exit(2);
  }
  const GtsIndex& index = *built.value();

  uint64_t h = kFnvOffset;
  FoldPod(&h, static_cast<uint32_t>(id));

  GtsQueryStats knn_stats;
  auto knn = index.KnnQueryBatch(queries, 5, &knn_stats);
  if (!knn.ok()) std::exit(2);
  for (const auto& res : knn.value()) {
    FoldPod(&h, static_cast<uint64_t>(res.size()));
    for (const Neighbor& nb : res) {
      FoldPod(&h, nb.id);
      FoldPod(&h, nb.dist);  // float BITS: equality is bitwise, not approx
    }
  }

  const float radius = id == DatasetId::kDna     ? 18.0f
                       : id == DatasetId::kWords ? 4.0f
                                                 : 0.35f * 282;
  const std::vector<float> radii(queries.size(), radius);
  GtsQueryStats range_stats;
  auto range = index.RangeQueryBatch(queries, radii, &range_stats);
  if (!range.ok()) std::exit(2);
  for (const auto& ids : range.value()) {
    FoldPod(&h, static_cast<uint64_t>(ids.size()));
    for (const uint32_t oid : ids) FoldPod(&h, oid);
  }

  // The evaluated distance set — and so every work counter — is part of
  // the contract: a tier that skipped or reordered evaluations would
  // change these even if the returned results happened to match.
  for (const GtsQueryStats* s : {&knn_stats, &range_stats}) {
    FoldPod(&h, s->distance_computations);
    FoldPod(&h, s->nodes_visited);
    FoldPod(&h, s->objects_verified);
    FoldPod(&h, s->query_groups);
    FoldPod(&h, s->nodes_pruned);
  }
  const DistanceStats ms = metric->stats();
  FoldPod(&h, ms.calls);
  FoldPod(&h, ms.ops);
  return h;
}

struct Report {
  std::vector<uint64_t> per_dataset;
  uint64_t combined = kFnvOffset;
};

Report RunAll() {
  Report r;
  for (const DatasetId id : kAllDatasets) {
    const uint64_t h = FingerprintDataset(id);
    r.per_dataset.push_back(h);
    FoldPod(&r.combined, h);
  }
  return r;
}

void Print(const Report& r, const char* tier) {
  std::printf("tier %s\n", tier);
  size_t i = 0;
  for (const DatasetId id : kAllDatasets) {
    std::printf("%-8s %016" PRIx64 "\n", GetDatasetSpec(id).name,
                r.per_dataset[i++]);
  }
  std::printf("combined %016" PRIx64 "\n", r.combined);
}

int SelfCheck() {
  std::vector<simd::Tier> tiers;
  for (const simd::Tier t :
       {simd::Tier::kScalar, simd::Tier::kAvx2, simd::Tier::kAvx512}) {
    if (simd::TierCompiled(t) && simd::TierSupportedByCpu(t)) {
      tiers.push_back(t);
    }
  }
  std::vector<Report> reports;
  for (const simd::Tier t : tiers) {
    simd::ScopedTierForTest scoped(t);
    reports.push_back(RunAll());
    Print(reports.back(), simd::TierName(t));
  }
  int rc = 0;
  for (size_t t = 1; t < reports.size(); ++t) {
    if (reports[t].combined != reports[0].combined) {
      std::fprintf(stderr, "FAIL: tier %s fingerprint differs from %s\n",
                   simd::TierName(tiers[t]), simd::TierName(tiers[0]));
      rc = 1;
    }
  }
  if (rc == 0) {
    std::printf("self-check OK: %zu tier(s) byte-identical\n", tiers.size());
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--self-check") == 0) {
    return SelfCheck();
  }
  Print(RunAll(), simd::TierName(simd::ActiveTier()));
  return 0;
}
