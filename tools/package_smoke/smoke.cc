// Downstream smoke test: exercises the installed package end to end —
// build an index, serve one request through the unified typed plane, and
// check the answer. Headers resolve through the installed include dir
// with the same paths the in-tree build uses.
#include <cstdio>
#include <numeric>
#include <vector>

#include "core/gts.h"
#include "data/generators.h"
#include "data/workload.h"
#include "serve/query_executor.h"
#include "serve/query_session.h"
#include "serve/request.h"

int main() {
  using namespace gts;
  gpu::Device device;
  const Dataset data = GenerateDataset(DatasetId::kTLoc, 500, /*seed=*/1);
  auto metric = MakeDatasetMetric(DatasetId::kTLoc);
  std::vector<uint32_t> ids(data.size());
  std::iota(ids.begin(), ids.end(), 0u);
  auto built =
      GtsIndex::Build(data.Slice(ids), metric.get(), &device, GtsOptions{});
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  auto index = std::move(built).value();

  serve::QueryExecutor exec(index.get(), {.num_threads = 2});
  serve::QuerySession session(index.get(), &exec, {});
  const Dataset queries = SampleQueries(data, 4, /*seed=*/5);
  serve::Response knn =
      session.Submit(serve::Request::Knn(queries, 0, /*k=*/3)).get();
  if (!knn.ok() || knn.knn().value().size() != 3) {
    std::fprintf(stderr, "serve failed: %s\n",
                 knn.status().ToString().c_str());
    return 1;
  }
  std::printf("gts package smoke OK: %zu neighbours, nearest id %u\n",
              knn.knn().value().size(), knn.knn().value()[0].id);
  return 0;
}
