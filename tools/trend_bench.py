#!/usr/bin/env python3
"""Trend-diff the current BENCH_*.json files against recent run history.

Usage:
    trend_bench.py --current DIR --history DIR [--pattern GLOB]
                   [--threshold 0.15]
    trend_bench.py --self-test

Where diff_bench.py compares exactly two runs (a checked-in baseline and a
candidate), this tool looks at a *window*: `--history` holds one
subdirectory per prior run (e.g. downloaded nightly artifacts, any
directory names — they are sorted lexicographically, so run-id or
timestamp names keep chronological order), and every BENCH file in
`--current` matching `--pattern` is compared against the per-series
median of that window. That smooths single-night noise: one slow host
does not move the median, but a real drift does.

Trend output is advisory by design — the exit status is 0 unless the
inputs are malformed (2). A missing or empty history is NOT an error:
the first night has nothing to compare against, so the tool prints what
it would have diffed and exits 0. Hard gating stays with diff_bench.py
and the checked-in baselines; this tool is the long-horizon drift radar
(ROADMAP's perf-trajectory-tracking item).
"""

import argparse
import glob
import json
import os
import statistics
import sys

SCHEMA = "gts-bench-v1"


def load_series(path):
    """Returns {(name, dataset): record} for one BENCH_*.json file."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != SCHEMA:
        raise ValueError(f"{path}: schema {doc.get('schema')!r} != {SCHEMA!r}")
    results = {}
    for record in doc.get("results", []):
        results[(record["name"], record["dataset"])] = record
    return results


def history_runs(history_dir, basename):
    """Loads `basename` from every run subdirectory that has it, oldest
    first. Runs missing the file (an older nightly that predates a bench)
    are skipped — series sets are allowed to grow over time."""
    runs = []
    if not os.path.isdir(history_dir):
        return runs
    for run in sorted(os.listdir(history_dir)):
        path = os.path.join(history_dir, run, basename)
        if os.path.isfile(path):
            runs.append((run, load_series(path)))
    return runs


def trend_file(current_path, history_dir, threshold, out=sys.stdout):
    """Prints the trend table for one BENCH file; returns the number of
    series drifting beyond the threshold (informational only)."""
    basename = os.path.basename(current_path)
    current = load_series(current_path)
    runs = history_runs(history_dir, basename)
    print(f"== {basename}: {len(current)} series, "
          f"{len(runs)} prior run(s)", file=out)
    if not runs:
        print("   no history yet — nothing to trend against", file=out)
        return 0

    drifting = 0
    for key in sorted(current):
        name, dataset = key
        cur = current[key]["throughput_per_min"]
        window = [r[key]["throughput_per_min"] for _, r in runs if key in r]
        if not window:
            print(f"   NEW   {name} [{dataset}]", file=out)
            continue
        median = statistics.median(window)
        if median == 0.0:
            continue
        delta = (cur - median) / median
        marker = "      "
        if delta <= -threshold:
            marker = "DOWN  "
            drifting += 1
        elif delta >= threshold:
            marker = "UP    "
        print(f"   {marker}{name} [{dataset}]: {delta:+.1%} vs "
              f"median of {len(window)}", file=out)
    if drifting:
        print(f"   {drifting} series below the {threshold:.0%} drift "
              f"threshold (advisory)", file=out)
    return drifting


def self_test():
    import tempfile

    def write(path, rows):
        os.makedirs(os.path.dirname(path), exist_ok=True)
        doc = {"bench": "t", "schema": SCHEMA, "results": [
            {"name": n, "dataset": "D", "samples": 1, "p50_latency_ms": 1.0,
             "p95_latency_ms": 2.0, "throughput_per_min": v}
            for n, v in rows]}
        with open(path, "w", encoding="utf-8") as f:
            json.dump(doc, f)

    with tempfile.TemporaryDirectory() as tmp:
        cur = os.path.join(tmp, "cur")
        hist = os.path.join(tmp, "hist")
        write(os.path.join(cur, "BENCH_t.json"),
              [("a/x", 50.0), ("a/new", 1.0)])
        # No history: advisory no-op.
        assert trend_file(os.path.join(cur, "BENCH_t.json"),
                          hist, 0.15) == 0
        # Three runs around 100: current 50 is a DOWN drift; the series
        # absent from history is NEW, not an error.
        for i, v in enumerate([90.0, 100.0, 110.0]):
            write(os.path.join(hist, f"run{i}", "BENCH_t.json"),
                  [("a/x", v)])
        assert trend_file(os.path.join(cur, "BENCH_t.json"),
                          hist, 0.15) == 1
        # Flat current (100 vs median 100) does not drift.
        write(os.path.join(cur, "BENCH_t.json"), [("a/x", 100.0)])
        assert trend_file(os.path.join(cur, "BENCH_t.json"),
                          hist, 0.15) == 0
    print("trend_bench self-test OK")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", help="directory with this run's BENCH files")
    parser.add_argument("--history",
                        help="directory of per-run subdirectories to trend against")
    parser.add_argument("--pattern", default="BENCH_*.json",
                        help="glob for BENCH files inside --current")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="fractional drift that flags a series")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.current or not args.history:
        parser.error("--current and --history are required")

    paths = sorted(glob.glob(os.path.join(args.current, args.pattern)))
    if not paths:
        print(f"no files matching {args.pattern} under {args.current}")
        return 0
    try:
        for path in paths:
            trend_file(path, args.history, args.threshold)
    except (OSError, ValueError, json.JSONDecodeError, KeyError) as e:
        print(f"trend_bench: {e}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
