#!/usr/bin/env python3
"""Project-invariant linter: rules the compiler can't see.

Four rules, each a hard CI gate (lint job + ctest):

  naked-primitives    No std::mutex / std::lock_guard / std::scoped_lock /
                      std::unique_lock / std::condition_variable / ... in
                      src/ outside common/thread_annotations.h. Everything
                      must go through the annotated gts::Mutex wrappers or
                      Clang Thread Safety Analysis has a blind spot.
  fault-sites         Every fault-site key tripped in src/ (Trip /
                      TripDelayMicros string literals) appears in the
                      fault-site table of docs/SERVING.md, and vice versa.
  bench-series        Every "gts-*" series prefix emitted by bench/*.cc has
                      at least one matching entry in bench/baselines/
                      BENCH_*.json, and every gts-* baseline entry traces
                      back to a source prefix (no orphaned gates).
  epoch-guard-blocking  A local epoch::Guard is never held across a
                      blocking Submit*() call or a future .get()/.wait()
                      in src/ — a pinned epoch across a queue wait stalls
                      reclamation for every writer. (unique_ptr::get() is
                      fine; the rule matches Submit calls and get/wait on
                      future-named receivers. ReadSnapshot's member guard
                      is exempt by design: snapshots pin deliberately.)

Exit 0 when clean; exit 1 listing violations. --self-test runs every rule
against embedded good/bad snippets and fails if any rule misses its bad
snippet or flags its good one.
"""

import argparse
import json
import pathlib
import re
import sys
import tempfile

NAKED_PRIMITIVES = [
    "std::mutex",
    "std::timed_mutex",
    "std::recursive_mutex",
    "std::shared_mutex",
    "std::lock_guard",
    "std::scoped_lock",
    "std::unique_lock",
    "std::shared_lock",
    "std::condition_variable",
]
WRAPPER_HEADER = pathlib.Path("src/common/thread_annotations.h")

FAULT_SITE_RE = re.compile(r'\b(?:Trip|TripDelayMicros)\s*\(\s*"([^"]+)"')
BENCH_SERIES_RE = re.compile(r'"(gts-[A-Za-z0-9/_@.,=-]*)"')
GUARD_DECL_RE = re.compile(r"\bepoch::Guard\s+\w+\s*\(")
BLOCKING_RE = re.compile(
    r"\bSubmit\w*\s*\(|\b\w*[Ff]ut\w*(?:ure)?s?(?:\[[^\]]*\])?"
    r"\s*\.\s*(?:get|wait)\s*\("
)


def strip_comments(text):
    """Remove // and /* */ comments, preserving line numbers and strings."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == '"' or c == "'":
            quote = c
            out.append(c)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append(text[i : i + 2])
                    i += 2
                else:
                    out.append(text[i])
                    i += 1
            if i < n:
                out.append(quote)
                i += 1
        elif text.startswith("//", i):
            while i < n and text[i] != "\n":
                i += 1
        elif text.startswith("/*", i):
            end = text.find("*/", i + 2)
            end = n if end < 0 else end + 2
            out.append("\n" * text.count("\n", i, end))
            i = end
        else:
            out.append(c)
            i += 1
    return "".join(out)


def source_files(root, subdir, exts=(".h", ".cc")):
    base = root / subdir
    if not base.is_dir():
        return []
    return sorted(p for p in base.rglob("*") if p.suffix in exts)


def check_naked_primitives(root):
    violations = []
    for path in source_files(root, "src"):
        if path == root / WRAPPER_HEADER:
            continue
        text = strip_comments(path.read_text())
        for lineno, line in enumerate(text.splitlines(), 1):
            for token in NAKED_PRIMITIVES:
                if token in line:
                    violations.append(
                        f"{path.relative_to(root)}:{lineno}: naked {token} — "
                        "use the annotated wrappers in "
                        "src/common/thread_annotations.h"
                    )
    return violations


def doc_fault_sites(root):
    """Keys from the fault-site table in docs/SERVING.md."""
    doc = root / "docs" / "SERVING.md"
    if not doc.is_file():
        return None
    keys = set()
    in_section = False
    for line in doc.read_text().splitlines():
        if line.startswith("#"):
            in_section = "fault" in line.lower()
            continue
        if in_section and line.startswith("|"):
            m = re.match(r"\|\s*`([^`]+)`\s*\|", line)
            if m:
                keys.add(m.group(1))
    return keys


def check_fault_sites(root):
    code_keys = set()
    for path in source_files(root, "src"):
        text = strip_comments(path.read_text())
        code_keys.update(FAULT_SITE_RE.findall(text))
    doc_keys = doc_fault_sites(root)
    if doc_keys is None:
        return ["docs/SERVING.md not found — fault-site table unverifiable"]
    violations = []
    for key in sorted(code_keys - doc_keys):
        violations.append(
            f"fault site '{key}' is tripped in src/ but missing from the "
            "docs/SERVING.md fault-site table"
        )
    for key in sorted(doc_keys - code_keys):
        violations.append(
            f"fault site '{key}' is documented in docs/SERVING.md but no "
            "src/ code trips it"
        )
    return violations


def baseline_names(root):
    names = []
    for path in sorted((root / "bench" / "baselines").glob("BENCH_*.json")):
        data = json.loads(path.read_text())
        for row in data.get("results", data.get("benchmarks", [])):
            if "name" in row:
                names.append(row["name"])
    return names


def check_bench_series(root):
    prefixes = set()
    for path in source_files(root, "bench", exts=(".cc",)):
        text = strip_comments(path.read_text())
        for literal in BENCH_SERIES_RE.findall(text):
            # A bare family name ("gts-serve") names the whole series
            # family; terminate it so it can't claim "gts-serve-stream".
            prefixes.add(literal if "/" in literal else literal + "/")
    names = baseline_names(root)
    if not names:
        return ["no bench/baselines/BENCH_*.json found — series unverifiable"]
    violations = []
    for prefix in sorted(prefixes):
        if not any(name.startswith(prefix) for name in names):
            violations.append(
                f"bench series prefix '{prefix}' is emitted by bench/ but "
                "has no entry in bench/baselines/BENCH_*.json — regenerate "
                "the baseline or the perf gate silently skips it"
            )
    for name in sorted(set(names)):
        if name.startswith("gts-") and not any(
            name.startswith(p) for p in prefixes
        ):
            violations.append(
                f"baseline series '{name}' matches no prefix emitted by "
                "bench/*.cc — stale gate, regenerate the baseline"
            )
    return violations


def check_epoch_guard_blocking(root):
    violations = []
    for path in source_files(root, "src"):
        text = strip_comments(path.read_text())
        for m in GUARD_DECL_RE.finditer(text):
            depth = 0
            i = m.end()
            scope_end = len(text)
            while i < len(text):
                c = text[i]
                if c == "{":
                    depth += 1
                elif c == "}":
                    depth -= 1
                    if depth < 0:
                        scope_end = i
                        break
                i += 1
            scope = text[m.end() : scope_end]
            for b in BLOCKING_RE.finditer(scope):
                lineno = text.count("\n", 0, m.end() + b.start()) + 1
                call = b.group(0).strip()
                violations.append(
                    f"{path.relative_to(root)}:{lineno}: '{call}' while a "
                    "local epoch::Guard is pinned — a blocked reader stalls "
                    "epoch reclamation; drop the guard (or use ReadSnapshot) "
                    "before blocking"
                )
    return violations


RULES = {
    "naked-primitives": check_naked_primitives,
    "fault-sites": check_fault_sites,
    "bench-series": check_bench_series,
    "epoch-guard-blocking": check_epoch_guard_blocking,
}


# --- self-test -------------------------------------------------------------

GOOD_SOURCE = """\
#include "common/thread_annotations.h"
// std::mutex in a comment is fine.
namespace gts {
struct S {
  Mutex mu_;
  int v_ GUARDED_BY(mu_) = 0;
};
void Reclaim() {
  epoch::Guard guard(&dom);
  auto* raw = owner.get();   /* unique_ptr::get(), not a future */
  (void)raw;
}
void Later(Session* s) { s->Submit(Req{}); }  // no guard pinned here
void Site() { fault::Registry::Instance().Trip("demo.site", 0); }
}  // namespace gts
"""

BAD_NAKED = "#include <mutex>\nstd::mutex mu;\n"
BAD_FAULT = (
    'void Extra() { fault::Registry::Instance().Trip("demo.rogue", 0); }\n'
)
BAD_GUARD = """\
void Wait(Session* s) {
  epoch::Guard guard(&dom);
  auto fut = s->Submit(Req{});
  fut.get();
}
"""

GOOD_DOC = """\
# Serving

### Deterministic fault injection

| site | where | key |
|---|---|---|
| `demo.site` | demo | none |

### Knobs

| `unrelated_knob` | not a fault site |
"""

GOOD_BENCH = 'const char* kName = "gts-demo";\n'
BAD_BENCH = GOOD_BENCH + 'const char* kOther = "gts-demo-unbaselined/x";\n'
GOOD_BASELINE = {"results": [{"name": "gts-demo/knn@threads=1"}]}
BAD_BASELINE = {
    "results": [
        {"name": "gts-demo/knn@threads=1"},
        {"name": "gts-stale/old"},
    ]
}


def write_tree(root, src, doc, bench, baseline):
    (root / "src" / "common").mkdir(parents=True)
    (root / "src" / "common" / "thread_annotations.h").write_text(
        "// wrapper header: the one place std::mutex may appear\n"
        "#include <mutex>\nnamespace gts { using Std = std::mutex; }\n"
    )
    (root / "src" / "demo.cc").write_text(src)
    (root / "docs").mkdir()
    (root / "docs" / "SERVING.md").write_text(doc)
    (root / "bench" / "baselines").mkdir(parents=True)
    (root / "bench" / "demo_bench.cc").write_text(bench)
    (root / "bench" / "baselines" / "BENCH_demo.json").write_text(
        json.dumps(baseline)
    )


def self_test():
    failures = []

    def expect(label, violations, want_hit):
        if want_hit and not violations:
            failures.append(f"{label}: bad snippet NOT caught")
        elif not want_hit and violations:
            failures.append(f"{label}: good snippet flagged: {violations}")
        else:
            print(f"ok   {label}")

    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(tmp) / "good"
        write_tree(root, GOOD_SOURCE, GOOD_DOC, GOOD_BENCH, GOOD_BASELINE)
        for name, rule in RULES.items():
            expect(f"{name} (clean tree)", rule(root), want_hit=False)

        cases = [
            ("naked-primitives", "src/extra.cc", BAD_NAKED),
            ("fault-sites", "src/extra.cc", BAD_FAULT),
            ("epoch-guard-blocking", "src/extra.cc", BAD_GUARD),
            ("bench-series", "bench/demo_bench.cc", BAD_BENCH),
        ]
        for idx, (rule_name, rel, content) in enumerate(cases):
            bad = pathlib.Path(tmp) / f"bad{idx}"
            write_tree(bad, GOOD_SOURCE, GOOD_DOC, GOOD_BENCH, GOOD_BASELINE)
            (bad / rel).write_text(content)
            expect(f"{rule_name} (seeded)", RULES[rule_name](bad), True)

        # bench-series reverse direction: stale baseline entry.
        stale = pathlib.Path(tmp) / "stale"
        write_tree(stale, GOOD_SOURCE, GOOD_DOC, GOOD_BENCH, BAD_BASELINE)
        expect("bench-series (stale baseline)", RULES["bench-series"](stale),
               want_hit=True)

        # fault-sites reverse direction: documented-but-untripped key.
        undoc = pathlib.Path(tmp) / "undoc"
        extra_doc = GOOD_DOC.replace(
            "| `demo.site` | demo | none |",
            "| `demo.site` | demo | none |\n| `demo.ghost` | gone | none |",
        )
        write_tree(undoc, GOOD_SOURCE, extra_doc, GOOD_BENCH, GOOD_BASELINE)
        expect("fault-sites (ghost doc row)", RULES["fault-sites"](undoc),
               want_hit=True)

    if failures:
        print(f"\nself-test: {len(failures)} failure(s)")
        for f in failures:
            print(f"  FAIL {f}")
        return 1
    print("\nself-test: all rules catch their bad snippets.")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "root", nargs="?", default=".", type=pathlib.Path,
        help="repository root (default: cwd)",
    )
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    root = args.root.resolve()
    all_violations = []
    for name, rule in RULES.items():
        violations = rule(root)
        status = "FAIL" if violations else "ok"
        print(f"{status:4} {name}: {len(violations)} violation(s)")
        all_violations.extend(violations)
    if all_violations:
        print()
        for v in all_violations:
            print(f"  {v}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
