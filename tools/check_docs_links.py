#!/usr/bin/env python3
"""Fail when the repo's markdown docs contain broken relative links.

Usage:
    check_docs_links.py [REPO_ROOT]

Scans every *.md under docs/ plus the top-level README.md for inline
markdown links `[text](target)` and reference definitions `[id]: target`,
and verifies that each *relative* target resolves to an existing file or
directory under the repo. External schemes (http/https/mailto) and
pure-anchor links (`#section`) are skipped; a `path#anchor` target is
checked for the path part only.

Exit status: 0 when every link resolves, 1 with one line per broken link
otherwise, 2 on usage errors. CI runs this in the lint job; locally it is
registered as the `docs_link_check` ctest (label: smoke).
"""

import pathlib
import re
import sys

# Inline links (image targets must exist too). The text part tolerates one
# level of bracket nesting so image-wrapped links ('[![badge](img)](dest)')
# yield their outer destination instead of slipping past the gate. Stops
# at whitespace or ')' so titles ('[t](path "title")') keep only the path.
INLINE_LINK_RE = re.compile(
    r"\[(?:[^\[\]]|\[[^\]]*\])*\]\(\s*<?([^)\s>]+)>?[^)]*\)")
REFERENCE_DEF_RE = re.compile(r"^\s*\[[^\]]+\]:\s+<?(\S+?)>?\s*$", re.MULTILINE)
EXTERNAL_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def markdown_files(root):
    """The files whose links are checked: docs/**/*.md + README.md."""
    files = sorted((root / "docs").glob("**/*.md"))
    readme = root / "README.md"
    if readme.exists():
        files.append(readme)
    return files


def broken_links(root):
    """Returns ['file: target', ...] for every unresolvable relative link."""
    broken = []
    for md in markdown_files(root):
        text = md.read_text(encoding="utf-8")
        targets = INLINE_LINK_RE.findall(text) + REFERENCE_DEF_RE.findall(text)
        for target in targets:
            if target.startswith(EXTERNAL_SCHEMES):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:  # pure in-file anchor
                continue
            resolved = (md.parent / path_part).resolve()
            if not resolved.exists():
                broken.append(f"{md.relative_to(root)}: {target}")
    return broken


def main(argv):
    if len(argv) > 2:
        print(__doc__, file=sys.stderr)
        return 2
    root = pathlib.Path(argv[1] if len(argv) == 2 else ".").resolve()
    if not root.is_dir():
        print(f"not a directory: {root}", file=sys.stderr)
        return 2
    files = markdown_files(root)
    if not files:
        print(f"no markdown files found under {root}/docs", file=sys.stderr)
        return 1
    broken = broken_links(root)
    for line in broken:
        print(f"broken link: {line}", file=sys.stderr)
    if broken:
        return 1
    print(f"checked {len(files)} markdown file(s): all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
